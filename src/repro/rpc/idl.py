"""Dataclass-schema IDL: typed RPC messages on 32-bit kernel words.

An RPC method's request and response are plain dataclasses whose fields
are annotated with wire-type markers (:data:`u8` … :data:`u64`,
:func:`vec`).  :func:`encode` lowers an instance to the flat list of
32-bit words the switch kernels see (``u64`` splits into hi/lo words, a
``vec(n)`` is padded to its declared length); :func:`decode` is the
exact inverse.  Keeping the wire unit at one kernel word means a
response can be memoized verbatim in the ToR's ``MemoData`` registers
and a gather payload merged element-wise by the spine — the IDL is the
contract between the host library and ``apps/netcl/rpc.ncl``.

The module also owns the wire constants mirrored by the kernel source
(op codes, payload word counts) and the deterministic memoization key:
a CRC-based 64-bit digest of the encoded request, *not* Python's
``hash()``, so two processes (and two runs) derive the same key for the
same call.
"""

from __future__ import annotations

import struct
import sys
import zlib
from dataclasses import dataclass, fields, is_dataclass
from typing import Optional

from repro.service.qos import TenantQoS

# -- wire constants mirrored in apps/netcl/rpc.ncl --------------------------------
OP_REQ = 1
OP_RSP = 2
OP_PARTIAL = 3

#: value words in a unary request/response (kernel ``RPC_WORDS``).
RPC_WORDS = 8
#: value words in a scatter-gather payload (kernel ``SG_WORDS``).
SG_WORDS = 8
#: method-id space at the edge (kernel ``NUM_METHODS``).
NUM_METHODS = 16
#: memoization lines per ToR (kernel ``MEMO_LINES``).
MEMO_LINES = 512


class _Scalar:
    """A fixed-width unsigned integer wire type."""

    def __init__(self, bits: int, name: str) -> None:
        self.bits = bits
        self.name = name
        self.words = 2 if bits == 64 else 1
        self.mask = (1 << bits) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


class _Vector:
    """A fixed-length vector of 32-bit words."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("vec length must be positive")
        self.count = count
        self.words = count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"vec({self.count})"


u8 = _Scalar(8, "u8")
u16 = _Scalar(16, "u16")
u32 = _Scalar(32, "u32")
u64 = _Scalar(64, "u64")


def vec(count: int) -> _Vector:
    """A field of ``count`` 32-bit words (padded with zeros on encode)."""
    return _Vector(count)


_EVAL_NS = {
    "u8": u8, "u16": u16, "u32": u32, "u64": u64, "vec": vec,
    "RPC_WORDS": RPC_WORDS, "SG_WORDS": SG_WORDS,
}


def _wire_type(annotation, owner=None):
    """Resolve a field annotation to its wire-type marker.

    Annotations may arrive as strings (``from __future__ import
    annotations`` in the schema's module), so string forms are evaluated
    against the marker namespace plus the globals of the module that
    defined ``owner`` (so ``vec(MY_CONSTANT)`` resolves).
    """
    if isinstance(annotation, (_Scalar, _Vector)):
        return annotation
    if isinstance(annotation, str):
        ns = dict(_EVAL_NS)
        if owner is not None:
            module = sys.modules.get(
                getattr(type(owner) if not isinstance(owner, type) else owner,
                        "__module__", None)
            )
            if module is not None:
                ns = {**vars(module), **ns}
        try:
            resolved = eval(annotation, {"__builtins__": {}}, ns)  # noqa: S307
        except Exception as exc:
            raise TypeError(f"unresolvable wire annotation {annotation!r}") from exc
        if isinstance(resolved, (_Scalar, _Vector)):
            return resolved
    raise TypeError(f"field annotation {annotation!r} is not a wire type")


def word_count(cls) -> int:
    """How many 32-bit words an instance of ``cls`` encodes to."""
    if not is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass schema")
    return sum(_wire_type(f.type, cls).words for f in fields(cls))


def encode(obj) -> list[int]:
    """Lower a schema dataclass instance to its flat 32-bit words."""
    words: list[int] = []
    for f in fields(obj):
        wt = _wire_type(f.type, obj)
        value = getattr(obj, f.name)
        if isinstance(wt, _Vector):
            value = list(value or [])
            if len(value) > wt.count:
                raise ValueError(
                    f"{type(obj).__name__}.{f.name}: {len(value)} words "
                    f"exceed vec({wt.count})"
                )
            words.extend(int(v) & 0xFFFFFFFF for v in value)
            words.extend(0 for _ in range(wt.count - len(value)))
        elif wt.bits == 64:
            v = int(value) & wt.mask
            words.append(v >> 32)
            words.append(v & 0xFFFFFFFF)
        else:
            words.append(int(value) & wt.mask)
    return words


def decode(cls, words) -> object:
    """Rebuild a schema dataclass instance from its flat words."""
    values = []
    at = 0
    words = list(words)
    for f in fields(cls):
        wt = _wire_type(f.type, cls)
        if at + wt.words > len(words):
            raise ValueError(
                f"{cls.__name__}: {len(words)} words too short at {f.name}"
            )
        if isinstance(wt, _Vector):
            values.append(list(words[at : at + wt.count]))
        elif wt.bits == 64:
            values.append((words[at] << 32) | words[at + 1])
        else:
            values.append(words[at] & wt.mask)
        at += wt.words
    return cls(*values)


def request_key(method_id: int, words) -> int:
    """Deterministic 64-bit memoization key for an encoded request.

    Two CRC32s over the packed words (the second salted with the method
    id) — stable across processes and runs, unlike Python's randomized
    ``hash()``.  Key collisions only cost a wrong memo line, and the
    version compare plus the server round-trip keep correctness.
    """
    data = struct.pack(f"!{len(words)}I", *(w & 0xFFFFFFFF for w in words))
    lo = zlib.crc32(data)
    hi = zlib.crc32(data, 0x9E3779B9 ^ (method_id & 0xFF))
    return ((hi << 32) | lo) & 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class RpcMethod:
    """One method of an RPC service schema."""

    name: str
    method_id: int
    request: type
    response: type
    #: "unary" (client -> one server, memoizable) or "gather"
    #: (client -> FANOUT replicas, switch-merged reply).
    kind: str = "unary"
    #: unary only: replies are pure functions of the request, so the ToR
    #: may serve them from its memo cache.
    idempotent: bool = False
    #: gather only: the spine merge policy ("sum", "min", "max", "vote",
    #: "topk" — see repro.rpc.policies).
    policy: str = "sum"
    #: per-method edge admission budget (max_pps/burst); None = unlimited.
    qos: Optional[TenantQoS] = None


class RpcSchema:
    """A validated set of :class:`RpcMethod` definitions."""

    def __init__(self, methods) -> None:
        self.methods = list(methods)
        self.by_id: dict[int, RpcMethod] = {}
        self.by_name: dict[str, RpcMethod] = {}
        from repro.rpc.policies import POLICY_CODES

        for m in self.methods:
            if not 0 <= m.method_id < NUM_METHODS:
                raise ValueError(
                    f"{m.name}: method_id {m.method_id} outside [0, {NUM_METHODS})"
                )
            if m.method_id in self.by_id or m.name in self.by_name:
                raise ValueError(f"duplicate method {m.name}/{m.method_id}")
            if m.kind not in ("unary", "gather"):
                raise ValueError(f"{m.name}: unknown kind {m.kind!r}")
            limit = RPC_WORDS if m.kind == "unary" else SG_WORDS
            for which, cls in (("request", m.request), ("response", m.response)):
                n = word_count(cls)
                if n > limit:
                    raise ValueError(
                        f"{m.name}: {which} is {n} words, wire carries {limit}"
                    )
            if m.kind == "gather" and m.policy not in POLICY_CODES:
                raise ValueError(f"{m.name}: unknown policy {m.policy!r}")
            self.by_id[m.method_id] = m
            self.by_name[m.name] = m

    @property
    def unary_methods(self) -> list[RpcMethod]:
        return [m for m in self.methods if m.kind == "unary"]

    @property
    def gather_methods(self) -> list[RpcMethod]:
        return [m for m in self.methods if m.kind == "gather"]
