"""Control-plane driver for the ToR's memoization cache.

The kernel side (``rpc_memo`` in ``rpc.ncl``) is read-only: it looks a
request key up in the ``MemoIndex`` MAT, version-checks the line, and
either reflects the memoized reply or passes through.  *This* class owns
every mutation, over a journaling
:class:`~repro.reliability.ReplicatedConnection` so a ToR failover
replays the cache onto the standby:

* :meth:`install` — write the reply words and the line's live version
  *before* publishing the MAT entry (a concurrent lookup between the
  two steps sees either no entry or a fully consistent line, never a
  torn one).  The MAT value carries the version the entry was installed
  at: ``(version << 16) | line``.
* :meth:`invalidate` — remove the MAT entry *and* bump the line's live
  version register, so even an in-flight packet that resolved the old
  MAT entry fails the kernel's version compare (counted ``MemoStale``).

Line allocation is host-side LRU; evicting a line removes the victim's
MAT entry before the line is reused.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.reliability import ReplicatedConnection
from repro.rpc.idl import MEMO_LINES, RPC_WORDS


class MemoController:
    """Host-side owner of one ToR's memo lines."""

    def __init__(
        self, conn: ReplicatedConnection, *, lines: int = MEMO_LINES, metrics=None,
        tag: str = "tor",
    ) -> None:
        self.conn = conn
        self.lines = lines
        #: key -> line, LRU-ordered (most recently installed last).
        self._key_line: "OrderedDict[int, int]" = OrderedDict()
        self._line_ver = [0] * lines
        self._free = list(range(lines - 1, -1, -1))
        if metrics is not None:
            self._installs = metrics.counter(f"rpc.memo.installs.{tag}")
            self._invalidations = metrics.counter(f"rpc.memo.invalidations.{tag}")
            self._evictions = metrics.counter(f"rpc.memo.evictions.{tag}")
        else:  # standalone use in unit tests
            self._installs = self._invalidations = self._evictions = _Null()

    def install(self, key: int, words: list[int]) -> int:
        """Memoize ``words`` under ``key``; returns the line used."""
        if len(words) > RPC_WORDS:
            raise ValueError(f"{len(words)} words exceed RPC_WORDS={RPC_WORDS}")
        line = self._key_line.get(key)
        update = line is not None
        if line is None:
            if self._free:
                line = self._free.pop()
            else:
                victim, line = self._key_line.popitem(last=False)
                self.conn.managed_remove("MemoIndex", victim)
                self._evictions.inc()
        ver = (self._line_ver[line] + 1) & 0xFFFF
        self._line_ver[line] = ver
        for i in range(RPC_WORDS):
            w = words[i] if i < len(words) else 0
            self.conn.managed_write("MemoData", w & 0xFFFFFFFF, index=i * self.lines + line)
        self.conn.managed_write("MemoVer", ver, index=line)
        meta = (ver << 16) | line
        if update:
            self.conn.managed_modify("MemoIndex", key, meta)
            self._key_line.move_to_end(key)
        else:
            self.conn.managed_insert("MemoIndex", key, meta)
            self._key_line[key] = line
        self._installs.inc()
        return line

    def invalidate(self, key: int) -> bool:
        """Drop ``key``'s memo line; returns whether it was cached."""
        line = self._key_line.pop(key, None)
        if line is None:
            return False
        self.conn.managed_remove("MemoIndex", key)
        # Belt and braces: bump the live version so a packet that raced
        # the removal (resolved the stale MAT entry at another pipeline
        # stage) still fails the kernel's version compare.
        self._line_ver[line] = (self._line_ver[line] + 1) & 0xFFFF
        self.conn.managed_write("MemoVer", self._line_ver[line], index=line)
        self._free.append(line)
        self._invalidations.inc()
        return True

    @property
    def cached_keys(self) -> int:
        return len(self._key_line)


class _Null:
    def inc(self, n: int = 1) -> None:
        pass
