"""Scatter-gather merge policies: what the spine computes, host-side twins.

The switch only knows three element-wise merges over the ``SG_WORDS``
payload — wrapping 32-bit sum, min, and max (``POLICY_*`` in
``rpc.ncl``).  Richer reply semantics are *encodings* onto those three:

* ``vote`` — each replica contributes a one-hot class-count vector; the
  switch sums, the client takes the argmax (:func:`finish_vote`).
* ``topk`` — each replica packs its local top-k candidates as
  ``(score << 16) | id`` into its own k-word lane
  (:func:`pack_topk`); the switch max-merges (zero is the identity, and
  lanes are disjoint so max is union), and the client sorts the merged
  candidates (:func:`finish_topk`).  Exact global top-k, because the
  global top-k is a subset of the union of per-replica top-k — provided
  ``fanout * k <= SG_WORDS``.

:func:`merge_words` is the host-side twin of the switch merge, used by
the host-only baseline and by validation: it must be *bit-identical* to
the kernel (sum wraps at 2^32 exactly like ``atomic_cond_add_new``).
"""

from __future__ import annotations

from repro.rpc.idl import SG_WORDS

#: policy name -> the kernel's POLICY_* code (vote rides sum, topk max).
POLICY_CODES = {"sum": 0, "min": 1, "max": 2, "vote": 0, "topk": 2}

_MASK = 0xFFFFFFFF


def merge_words(policy: str, parts: list[list[int]]) -> list[int]:
    """Merge replica payloads exactly as the spine kernel would."""
    code = POLICY_CODES[policy]
    if not parts:
        return [0] * SG_WORDS
    out = [w & _MASK for w in parts[0]]
    for part in parts[1:]:
        for i, w in enumerate(part):
            w &= _MASK
            if code == 1:
                out[i] = min(out[i], w)
            elif code == 2:
                out[i] = max(out[i], w)
            else:
                out[i] = (out[i] + w) & _MASK
    return out


# -- vote: one-hot class counts over sum ------------------------------------------
def one_hot(class_id: int, num_classes: int) -> list[int]:
    """A replica's vote as a class-count vector (rides the sum merge)."""
    if not 0 <= class_id < num_classes <= SG_WORDS:
        raise ValueError(f"class {class_id} outside [0, {num_classes})")
    words = [0] * num_classes
    words[class_id] = 1
    return words


def finish_vote(merged: list[int]) -> tuple[int, int]:
    """The majority decision: (winning class, its vote count)."""
    best = max(range(len(merged)), key=lambda i: (merged[i], -i))
    return best, merged[best]


# -- topk: per-replica candidate lanes over max -----------------------------------
def pack_topk(
    candidates: list[tuple[int, int]], replica_index: int, k: int, fanout: int
) -> list[int]:
    """Pack one replica's local top-k into its lane of the payload.

    ``candidates`` are ``(score, id)`` with ``score`` in [1, 0xFFFF] (0
    is the merge identity and means "no candidate") and ``id`` in
    [0, 0xFFFF].
    """
    if fanout * k > SG_WORDS:
        raise ValueError(
            f"fanout {fanout} * k {k} exceeds the {SG_WORDS}-word payload"
        )
    lane = sorted(candidates, reverse=True)[:k]
    words = [0] * SG_WORDS
    for i, (score, doc) in enumerate(lane):
        if not 0 < score <= 0xFFFF or not 0 <= doc <= 0xFFFF:
            raise ValueError(f"candidate ({score}, {doc}) outside u16 range")
        words[replica_index * k + i] = (score << 16) | doc
    return words


def finish_topk(merged: list[int], k: int) -> list[tuple[int, int]]:
    """The global top-k (score, id) from the max-merged lanes."""
    cands = [((w >> 16) & 0xFFFF, w & 0xFFFF) for w in merged if w]
    return sorted(cands, reverse=True)[:k]
