"""Acceptance scenario: the RPC fabric surviving chaos.

The flagship run the subsystem is judged by: 2 racks x 8 replica servers
(fan-out 16), two clients, three traffic classes — memoized idempotent
``get``, rate-limited non-idempotent ``bump``, and scatter-gather
queries under ``sum``/``min``/``max`` merge — completing *bit-identically
per seed* under 5% loss, duplication, reordering, jitter, and a mid-run
crash of rack 0's primary ToR:

* every ``get`` reply (switch hit or server miss) equals the handler's
  deterministic value, and at least one call is answered by the ToR
  memo — including after the failover replayed the memo journal onto
  the standby;
* every ``bump`` token is applied **exactly once** despite client
  retries and link duplication (the server-side at-most-once cache);
* every merged gather reply is bit-identical to the host twin
  ``merge_words`` over the 16 recomputed partials;
* the in-network gather traffic (with every chaos-forced
  retransmission) stays below the host-only fan-out baseline running
  the same queries over its reliable transport under the same link
  faults (the baseline keeps its switches: a host fan-out has no
  standby path, so it gets the kinder, crash-free plan and still
  loses).

Mirrors :mod:`repro.collective.scenarios`: same fault-plan shape, same
sha256-over-sorted-JSON determinism digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass as runtime_dataclass
from dataclasses import field
from typing import Optional

from repro.chaos.inject import ChaosController
from repro.chaos.plan import ChaosEvent, ChaosPlan, LinkFaults
from repro.reliability import FailoverManager
from repro.rpc.baseline import run_host_fanout
from repro.rpc.cluster import (
    build_rpc_cluster,
    standby_device,
    tor_device,
)
from repro.rpc.idl import SG_WORDS, RpcMethod, RpcSchema, u32, vec
from repro.rpc.policies import POLICY_CODES, merge_words
from repro.service.qos import TenantQoS

GET_VALUE_WORDS = 4


# -- the scenario schema ----------------------------------------------------------
@runtime_dataclass
class GetReq:
    key: u32 = 0


@runtime_dataclass
class GetRsp:
    v: vec(GET_VALUE_WORDS) = None


@runtime_dataclass
class BumpReq:
    token: u32 = 0


@runtime_dataclass
class BumpRsp:
    applied: u32 = 0
    total: u32 = 0


@runtime_dataclass
class QueryReq:
    q: u32 = 0


@runtime_dataclass
class QueryRsp:
    v: vec(SG_WORDS) = None


def scenario_schema() -> RpcSchema:
    """get -> rack 0 (the crash target), bump -> rack 1, three gathers."""
    return RpcSchema(
        [
            RpcMethod("get", 0, GetReq, GetRsp, kind="unary", idempotent=True),
            RpcMethod(
                "bump", 1, BumpReq, BumpRsp, kind="unary",
                qos=TenantQoS(max_pps=5_000_000, burst=8),
            ),
            RpcMethod("msum", 2, QueryReq, QueryRsp, kind="gather", policy="sum"),
            RpcMethod("mmin", 3, QueryReq, QueryRsp, kind="gather", policy="min"),
            RpcMethod("mmax", 4, QueryReq, QueryRsp, kind="gather", policy="max"),
        ]
    )


def get_value(key: int) -> list[int]:
    """The deterministic value ``get`` serves (and the ToR memoizes)."""
    return [
        (key * 2654435761 + i * 0x9E3779B9) & 0xFFFFFFFF
        for i in range(GET_VALUE_WORDS)
    ]


def query_partial(q: int, replica: int) -> list[int]:
    """The pure per-replica gather partial (recomputable for repair)."""
    return [
        (q * 2654435761 + replica * 40503 + i * 1013) & 0xFFFFFFFF
        for i in range(SG_WORDS)
    ]


def scenario_handlers(bump_counts: dict[int, int]) -> dict:
    def get(request: GetReq) -> GetRsp:
        return GetRsp(v=get_value(request.key))

    def bump(request: BumpReq) -> BumpRsp:
        bump_counts[request.token] = bump_counts.get(request.token, 0) + 1
        return BumpRsp(applied=1, total=len(bump_counts))

    def query(request: QueryReq, replica: int) -> list[int]:
        return query_partial(request.q, replica)

    return {"get": get, "bump": bump, "msum": query, "mmin": query, "mmax": query}


def default_rpc_plan(
    seed: int,
    *,
    loss: float = 0.05,
    duplicate: float = 0.05,
    reorder: float = 0.05,
    jitter_ns: int = 1_000,
    crash_at_ns: Optional[int] = 60_000,
) -> ChaosPlan:
    """The acceptance fault model, aimed at rack 0's primary ToR."""
    faults = LinkFaults(
        loss=loss,
        duplicate=duplicate,
        reorder=reorder,
        reorder_delay_ns=15_000,
        jitter_ns=jitter_ns,
    )
    events = []
    if crash_at_ns is not None:
        events.append(
            ChaosEvent(at_ns=crash_at_ns, kind="crash", node=f"d{tor_device(0)}")
        )
    return ChaosPlan(seed=seed, default_link=faults, events=events)


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


@runtime_dataclass
class RpcRunResult:
    """What one RPC chaos run produced."""

    seed: int
    ok: bool
    errors: list[str]
    num_racks: int
    servers_per_rack: int
    clients: int
    unary_calls: int
    gather_calls: int
    memo_hits: int
    replays: int
    failed_over: bool
    sim_ns: int
    finished_at_ns: Optional[int]
    innetwork_link_bytes: int
    fanout_link_bytes: Optional[int]
    digest: str
    counters: dict[str, object] = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    metrics: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "errors": self.errors,
            "num_racks": self.num_racks,
            "servers_per_rack": self.servers_per_rack,
            "clients": self.clients,
            "unary_calls": self.unary_calls,
            "gather_calls": self.gather_calls,
            "memo_hits": self.memo_hits,
            "replays": self.replays,
            "failed_over": self.failed_over,
            "sim_ns": self.sim_ns,
            "finished_at_ns": self.finished_at_ns,
            "innetwork_link_bytes": self.innetwork_link_bytes,
            "fanout_link_bytes": self.fanout_link_bytes,
            "digest": self.digest,
            "counters": self.counters,
            "plan": self.plan,
        }


def run_rpc_chaos(
    seed: int = 7,
    *,
    num_racks: int = 2,
    servers_per_rack: int = 8,
    num_clients: int = 2,
    gets_per_client: int = 8,
    bumps_per_client: int = 6,
    gathers_per_client: int = 12,
    window: int = 8,
    plan: Optional[ChaosPlan] = None,
    heartbeat_ns: int = 100_000,
    horizon_ms: float = 200.0,
    baseline: bool = True,
    trace: bool = False,
) -> RpcRunResult:
    """One full RPC workload surviving the acceptance fault plan.

    Every rack gets a standby ToR and a
    :class:`~repro.reliability.FailoverManager` whose replicated
    connection is the rack's memo journal: promotion replays the whole
    memoization cache onto the standby, then the failover hook repoints
    the edge's ``URoute`` entries — clients keep retrying with fresh
    sequence numbers and never learn the ToR changed.
    """
    plan = plan if plan is not None else default_rpc_plan(seed)
    schema = scenario_schema()
    bump_counts: dict[int, int] = {}
    cluster = build_rpc_cluster(
        schema,
        scenario_handlers(bump_counts),
        num_racks=num_racks,
        servers_per_rack=servers_per_rack,
        num_clients=num_clients,
        window=window,
        gather_rounds=max(gathers_per_client, 1),
        seed=seed,
        standby=True,
    )
    net = cluster.network
    if trace:
        net.enable_tracing()

    managers: list[FailoverManager] = []
    for rack in range(num_racks):
        rack_methods = [
            mid for mid, r in cluster.method_rack.items() if r == rack
        ]

        def promote(mgr: FailoverManager, rack_methods=rack_methods) -> None:
            # Journal replay (memo cache) already ran; repoint the
            # edge's steering so new unary attempts reach the standby.
            for mid in rack_methods:
                cluster.reroute_method(mid, mgr.standby_id)

        managers.append(
            FailoverManager(
                net,
                tor_device(rack),
                standby_device(rack),
                heartbeat_ns=heartbeat_ns,
                replicated=cluster.memo[rack].conn,
                on_failover=promote,
            ).start()
        )

    ChaosController(net, plan).arm()

    # -- workload -----------------------------------------------------------------
    gather_names = [m.name for m in schema.gather_methods]
    for c, client in enumerate(cluster.clients):
        for i in range(gets_per_client):
            # Small key space shared across clients: repeats hit the memo.
            client.call("get", GetReq(key=(i % 4) + 1))
        for i in range(bumps_per_client):
            client.call("bump", BumpReq(token=c * 1000 + i + 1))
        for i in range(gathers_per_client):
            client.gather(
                gather_names[i % len(gather_names)],
                QueryReq(q=seed * 10_000 + c * 100 + i),
            )
    cluster.run(until_ms=horizon_ms)

    # -- validate -----------------------------------------------------------------
    errors: list[str] = []
    if not cluster.all_done:
        errors.extend(cluster.stall_report())
        errors.append("not all calls completed")
    for client in cluster.clients:
        for call in client.completed_unary:
            if call.method.name == "get":
                expected = get_value(call.request.key)
                if list(call.response.v) != expected:
                    errors.append(
                        f"h{client.host_id} get(key={call.request.key}): "
                        f"wrong value {list(call.response.v)}"
                    )
            elif call.method.name == "bump" and call.response.applied != 1:
                errors.append(
                    f"h{client.host_id} bump(token={call.request.token}): "
                    f"applied={call.response.applied}"
                )
        for call in client.completed_gather:
            expected = merge_words(
                call.method.policy,
                [
                    query_partial(call.request.q, r)
                    for r in range(cluster.fanout)
                ],
            )
            if call.merged != expected:
                errors.append(
                    f"h{client.host_id} {call.method.name}"
                    f"(q={call.request.q}): merged != host twin"
                )
    over_applied = {t: n for t, n in bump_counts.items() if n != 1}
    if over_applied:
        errors.append(f"bump tokens applied != exactly once: {over_applied}")
    expected_tokens = num_clients * bumps_per_client
    if cluster.all_done and len(bump_counts) != expected_tokens:
        errors.append(
            f"{len(bump_counts)}/{expected_tokens} bump tokens applied"
        )

    m = net.metrics
    memo_hits = int(m.total("rpc.client.memo_hits."))
    if gets_per_client >= 2 and memo_hits == 0:
        errors.append("no get was ever answered by the ToR memo")
    if plan.events and not managers[0].failed_over:
        errors.append("ToR crash never triggered failover")

    innetwork_bytes = cluster.link_bytes()
    fanout_bytes: Optional[int] = None
    if baseline and gathers_per_client > 0:
        # Same gather queries, same link faults, no crash (a host
        # fan-out has no standby path), client-side merge.
        queries = []
        for c in range(num_clients):
            for i in range(gathers_per_client):
                policy = gather_names[i % len(gather_names)]
                queries.append(
                    (
                        [seed * 10_000 + c * 100 + i],
                        POLICY_CODES[schema.by_name[policy].policy],
                    )
                )
        fanout_plan = ChaosPlan(
            seed=plan.seed, default_link=plan.default_link, links=dict(plan.links)
        )
        host = run_host_fanout(
            num_racks,
            servers_per_rack,
            queries,
            lambda words, replica: query_partial(words[0], replica),
            {code: name for name, code in POLICY_CODES.items()},
            window=window,
            seed=seed,
            plan=fanout_plan,
        )
        fanout_bytes = host.link_bytes
        if innetwork_bytes >= fanout_bytes:
            errors.append(
                f"in-network traffic {innetwork_bytes} B did not beat the "
                f"host fan-out's {fanout_bytes} B under the same link faults"
            )

    unary_done = sum(len(c.completed_unary) for c in cluster.clients)
    gather_done = sum(len(c.completed_gather) for c in cluster.clients)
    finished_at = (
        max(
            call.finished_ns
            for c in cluster.clients
            for call in (*c.completed_unary, *c.completed_gather)
        )
        if cluster.all_done and (unary_done or gather_done)
        else None
    )
    counters = {
        "client_retries": m.total("rpc.client.retries."),
        "server_executions": m.total("rpc.server.executions."),
        "server_replays": m.total("rpc.server.replays."),
        "server_partials": m.total("rpc.server.partials."),
        "memo_installs": m.total("rpc.memo.installs."),
        "channel_retransmits": m.total("reliability.ch.retransmits."),
        "device_dup_drops": m.total("reliability.dup_drops"),
        "failovers": m.total("reliability.failover.count"),
        "ops_replayed": m.total("reliability.failover.ops_replayed"),
        "chaos_lost": m.total("chaos.lost"),
        "chaos_duplicated": m.total("chaos.duplicated"),
        "chaos_reordered": m.total("chaos.reordered"),
        "multicast_hops_saved": m.total("net.multicast.hops_saved"),
    }
    snapshot = m.snapshot()
    digest = _digest(
        {
            "app": "rpc",
            "seed": seed,
            "unary": {
                f"h{c.host_id}:{call.req_id}": [
                    call.method.name,
                    int(call.hit),
                    [int(w) for w in getattr(call.response, "v", []) or []],
                ]
                for c in cluster.clients
                for call in sorted(c.completed_unary, key=lambda x: x.req_id)
            },
            "gather": {
                f"h{c.host_id}:{call.round}": [
                    call.method.name,
                    [f"{w:08x}" for w in call.merged],
                ]
                for c in cluster.clients
                for call in sorted(c.completed_gather, key=lambda x: x.round)
            },
            "finished_at_ns": finished_at,
            "metrics": snapshot,
        }
    )
    return RpcRunResult(
        seed=seed,
        ok=not errors,
        errors=errors,
        num_racks=num_racks,
        servers_per_rack=servers_per_rack,
        clients=num_clients,
        unary_calls=unary_done,
        gather_calls=gather_done,
        memo_hits=memo_hits,
        replays=int(m.total("rpc.server.replays.")),
        failed_over=any(mgr.failed_over for mgr in managers),
        sim_ns=net.sim.now_ns,
        finished_at_ns=finished_at,
        innetwork_link_bytes=innetwork_bytes,
        fanout_link_bytes=fanout_bytes,
        digest=digest,
        counters=counters,
        plan=plan.to_dict(),
        metrics=snapshot,
    )
