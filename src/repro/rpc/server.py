"""The RPC server: at-most-once unary execution, idempotent partials.

One :class:`RpcServer` owns one host, a handler per schema method, and a
:class:`~repro.reliability.ReliableChannel` targeting the spine (where
its gather partials are merged).

* **Unary** requests are executed **at most once per request id**: the
  client retries with fresh channel sequence numbers (so retries survive
  the switches' device-side dedup), and this server keeps its own
  bounded reply cache keyed ``(client, req_id)`` — a retry of an
  already-executed request replays the cached reply values (re-stamped
  for the retry's sequence number) without re-running the handler.  The
  channel's own ``(sender, seq)`` reply cache still backstops pure
  network duplication of a single attempt.
* **Gather** requests arrive via the spine's multicast; the partial
  handler must be a pure function of ``(request, replica_index)``
  because straggler repair *recomputes* it — every retransmitted
  scatter re-executes the handler and re-contributes the identical
  partial, which the spine's guarded merge ignores past the first copy.
* After serving an idempotent unary miss the server installs the reply
  into its rack's ToR memo (through :class:`repro.rpc.memo.MemoController`),
  so the *next* call with the same key is answered by the switch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.reliability import ReliableChannel
from repro.rpc.idl import (
    OP_PARTIAL,
    OP_REQ,
    OP_RSP,
    RPC_WORDS,
    SG_WORDS,
    RpcSchema,
    decode,
    encode,
)
from repro.rpc.memo import MemoController
from repro.runtime.message import NetCLPacket, unpack

#: bound on the per-server at-most-once reply cache (logical replies).
REPLY_CACHE_ENTRIES = 1024


class RpcServer:
    """One replica host executing schema methods."""

    def __init__(
        self,
        network,
        host_id: int,
        schema: RpcSchema,
        handlers: dict,
        *,
        replica_index: int,
        sg_device: int,
        spec_unary,
        spec_sg,
        memo: Optional[MemoController] = None,
    ) -> None:
        self.network = network
        self.host_id = host_id
        self.host = network.hosts[host_id]
        self.schema = schema
        self.handlers = dict(handlers)
        self.replica_index = replica_index
        self.spec_unary = spec_unary
        self.spec_sg = spec_sg
        self.memo = memo
        #: (client_host, req_id) -> cached unary reply values.
        self._answered: "OrderedDict[tuple[int, int], list]" = OrderedDict()

        self.host.on_receive = self._dispatch
        self.channel = ReliableChannel(
            network, self.host, spec_unary, target_device=sg_device, ack=False
        )

        m = network.metrics
        tag = f"h{host_id}"
        self._m_exec = m.counter(f"rpc.server.executions.{tag}")
        self._m_replays = m.counter(f"rpc.server.replays.{tag}")
        self._m_partials = m.counter(f"rpc.server.partials.{tag}")
        self._m_installs = m.counter(f"rpc.server.memo_installs.{tag}")
        self._m_unknown = m.counter(f"rpc.server.unknown_dropped.{tag}")
        self._m_suppressed = m.counter(f"rpc.server.suppressed.{tag}")

    def _dispatch(self, packet: NetCLPacket, now_ns: int) -> None:
        if packet.comp == 2:
            self._handle_scatter(packet)
        else:
            self._handle_unary(packet)

    # -- unary --------------------------------------------------------------------
    def _handle_unary(self, packet: NetCLPacket) -> None:
        msg, values = unpack(packet.to_wire(), self.spec_unary)
        op, method_id, req_id, key = values[0], values[1], values[2], values[3]
        if op != OP_REQ:
            return
        method = self.schema.by_id.get(method_id)
        if method is None or method.kind != "unary":
            self._m_unknown.inc()
            return
        cache_key = (msg.src, req_id)
        cached = self._answered.get(cache_key)
        if cached is not None:
            # A client retry of a request we already executed: replay the
            # reply for the retry's sequence number, never the handler.
            self._answered.move_to_end(cache_key)
            self._m_replays.inc()
            self.channel.send_reply(packet, cached, comp=1)
            return
        request = decode(method.request, values[6])
        response = self.handlers[method.name](request)
        words = encode(response)
        words += [0] * (RPC_WORDS - len(words))
        reply_values = [OP_RSP, method_id, req_id, key, 0, 0, words]
        self._answered[cache_key] = reply_values
        while len(self._answered) > REPLY_CACHE_ENTRIES:
            self._answered.popitem(last=False)
        self._m_exec.inc()
        self.channel.send_reply(packet, reply_values, comp=1)
        if method.idempotent and self.memo is not None:
            self._m_installs.inc()
            self.memo.install(key, words)

    # -- gather -------------------------------------------------------------------
    def _handle_scatter(self, packet: NetCLPacket) -> None:
        msg, values = unpack(packet.to_wire(), self.spec_sg)
        ver, bmp_idx, agg_idx, done_mask, tag, op, method_id, policy = values[:8]
        if op != OP_REQ:
            return
        if done_mask & (1 << self.replica_index):
            # The spine stamped the slot's bitmap into the scatter: our
            # partial already merged, so this re-scatter is only chasing
            # the replicas still missing — stay silent.
            self._m_suppressed.inc()
            return
        method = self.schema.by_id.get(method_id)
        if method is None or method.kind != "gather":
            self._m_unknown.inc()
            return
        request = decode(method.request, values[8])
        partial = list(self.handlers[method.name](request, self.replica_index))
        partial = [w & 0xFFFFFFFF for w in partial]
        partial += [0] * (SG_WORDS - len(partial))
        self._m_partials.inc()
        # Echo the slot header; contribute this replica's mask bit.  The
        # partial routes to the spine (the channel's target) addressed to
        # the requesting client — msg.src: the multicast rewrote dst to
        # this host, but the scatter's source survives the copy — so the
        # spine's cnt==0 pass delivers the merged reply to the client.
        self.channel.request(
            [
                ver,
                bmp_idx,
                agg_idx,
                1 << self.replica_index,
                tag,
                OP_PARTIAL,
                method_id,
                policy,
                partial,
            ],
            dst=msg.src,
            retransmit=False,
            spec=self.spec_sg,
            comp=2,
        )
