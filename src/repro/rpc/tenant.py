"""Run the RPC fabric as a :mod:`repro.service` tenant.

The standalone :mod:`repro.rpc.cluster` owns its whole fabric; here the
same three switch roles are expressed as an *abstract* topology (edge
device 1, spine 2, one ToR per rack from 3) and submitted to a
long-lived :class:`~repro.service.INCService`, which places them into
whatever headroom other tenants left, enforces the tenant's QoS, and
live-migrates the slices off crashed switches.  Every control-plane
handle is the service's journaling
:meth:`~repro.service.INCService.control` connection, so a migration
re-installs the edge's routing MATs and token buckets *and* the ToR's
entire memoization cache from the compacted journal; the clients' and
servers' ReliableChannels are registered with the service, which
retargets them at the replacement slice.  The ``on_migrate`` hook only
has to restart in-flight gather rounds (the spine's slot state moved);
unary calls re-resolve through their own retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netsim import HOST
from repro.reliability import ReliableChannel
from repro.rpc.client import RpcClient
from repro.rpc.cluster import SG_MCAST_GROUP, TokenRefiller, compile_rpc_role
from repro.rpc.idl import RpcSchema
from repro.rpc.memo import MemoController
from repro.rpc.server import RpcServer
from repro.runtime import KernelSpec
from repro.runtime.constants import DEFAULT_SLOT_TIMEOUT_NS, NUM_SLOTS
from repro.service import INCService, Tenant, TenantQoS

#: abstract device ids the RPC program is written against.
ABSTRACT_EDGE = 1
ABSTRACT_SG = 2


def abstract_tor(rack: int) -> int:
    """The abstract device id of rack ``rack``'s ToR."""
    return 3 + rack


@dataclass
class RpcTenant:
    """One admitted RPC tenant: its clients, servers, and control plane."""

    service: INCService
    tenant_id: str
    tenant: Tenant
    schema: RpcSchema
    clients: list[RpcClient]
    servers: list[RpcServer]
    memo: dict[int, MemoController]
    refiller: TokenRefiller
    edge_conn: object
    spec_unary: KernelSpec
    spec_sg: KernelSpec
    num_racks: int
    servers_per_rack: int
    method_rack: dict[int, int]
    method_server: dict[int, int]
    _started: bool = field(default=False, repr=False)

    @property
    def fanout(self) -> int:
        return self.num_racks * self.servers_per_rack

    def run(self, until_ms: float = 50.0) -> None:
        """Drive the service's simulation (relative horizon)."""
        if not self._started:
            for c in self.clients:
                c.start()
            self._started = True
        sim = self.service.network.sim
        sim.run(until_ns=sim.now_ns + int(until_ms * 1e6))

    @property
    def all_done(self) -> bool:
        return all(c.all_done for c in self.clients)

    def stall_report(self) -> list[str]:
        out = []
        for c in self.clients:
            r = c.stall_report()
            if r is not None:
                out.append(f"client h{c.host_id}: {r}")
        return out

    # -- migration ----------------------------------------------------------------
    def resync(self) -> None:
        """Restart every in-flight gather round.

        A migrated spine slice lost its slot merge state (bitmaps,
        partial sums, countdowns); re-sending each outstanding round's
        scatter rebuilds it — servers recompute their pure partials and
        completed rounds answer straight from the merge registers.
        Unary calls need nothing: their retry timers re-send through
        the retargeted channel.
        """
        for c in self.clients:
            stream = c.gather_stream
            for slot, chunk in sorted(stream._slot_chunk.items()):
                if chunk is not None:
                    stream.resync_slot(slot, chunk)


def submit_rpc_tenant(
    service: INCService,
    tenant_id: str,
    schema: RpcSchema,
    handlers: dict,
    *,
    client_hosts: list[int],
    server_hosts: list[int],
    num_racks: int = 2,
    qos: Optional[TenantQoS] = None,
    window: int = 8,
    gather_rounds: int = 64,
    timeout_ns: int = DEFAULT_SLOT_TIMEOUT_NS,
    refill_interval_ns: int = 50_000,
    target: str = "tna",
) -> RpcTenant:
    """Admit an RPC tenant onto ``service``'s shared fabric.

    ``server_hosts`` are the replica hosts in replica-index order, split
    evenly into ``num_racks`` racks; rack ``r``'s servers attach to
    abstract ToR ``3 + r``.  Raises
    :class:`~repro.service.AdmissionError` if the fabric has no headroom
    for the three roles.
    """
    if len(server_hosts) % num_racks != 0:
        raise ValueError(
            f"{len(server_hosts)} servers do not split into {num_racks} racks"
        )
    servers_per_rack = len(server_hosts) // num_racks
    fanout = len(server_hosts)
    if not 1 <= fanout <= 16:
        raise ValueError("fanout must be in [1, 16] (replica bits are u16)")
    for name in (m.name for m in schema.methods):
        if name not in handlers:
            raise ValueError(f"no handler for method {name!r}")
    from repro.deploy.planner import AbstractTopology

    topo = AbstractTopology()
    compiled: dict[int, object] = {}

    def compile_at(abstract_id: int, role: str):
        prog = compile_rpc_role(
            abstract_id,
            role,
            fanout=fanout,
            edge_dev=ABSTRACT_EDGE,
            sg_dev=ABSTRACT_SG,
            mcast_group=SG_MCAST_GROUP,
            target=target,
        )
        compiled[abstract_id] = prog
        topo.add_device(abstract_id, prog)
        return prog

    compile_at(ABSTRACT_EDGE, "edge")
    compile_at(ABSTRACT_SG, "sg")
    topo.connect_devices(ABSTRACT_EDGE, ABSTRACT_SG)
    for rack in range(num_racks):
        compile_at(abstract_tor(rack), "tor")
        topo.connect_devices(abstract_tor(rack), ABSTRACT_EDGE)
        topo.connect_devices(abstract_tor(rack), ABSTRACT_SG)
    for h in client_hosts:
        topo.attach_host(h, ABSTRACT_EDGE)
    for i, h in enumerate(server_hosts):
        topo.attach_host(h, abstract_tor(i // servers_per_rack))
    topo.add_multicast_group(SG_MCAST_GROUP, [HOST(h) for h in server_hosts])

    rt: Optional[RpcTenant] = None

    def on_migrate(service: INCService, tenant: Tenant) -> None:
        if rt is not None:
            rt.resync()

    # No ordered mode: same argument as the standalone cluster (the
    # guarded slot merge plus the client's ver+tag checks make FIFO
    # enforcement pure stale-drop overhead).
    qos = qos or TenantQoS()
    tenant = service.submit(tenant_id, topo, qos, on_migrate=on_migrate)

    edge_kernels = {
        k.computation: k for k in compiled[ABSTRACT_EDGE].kernels()
    }
    spec_unary = KernelSpec.from_kernel(edge_kernels[1])
    spec_sg = KernelSpec.from_kernel(edge_kernels[2])

    net = service.network
    # The fan-out comparison's host model, applied on every RPC host.
    for h in (*client_hosts, *server_hosts):
        net.hosts[h].serialize_overheads = True

    # -- control plane: journaling connections the migration replays ---------------
    edge_conn = service.control(tenant_id, ABSTRACT_EDGE)
    method_rack: dict[int, int] = {}
    method_server: dict[int, int] = {}
    for m in schema.methods:
        if m.kind == "unary":
            rack = m.method_id % num_racks
            within = (m.method_id // num_racks) % servers_per_rack
            method_rack[m.method_id] = rack
            method_server[m.method_id] = server_hosts[
                rack * servers_per_rack + within
            ]
            # MAT values are *abstract* ids: the slice wrapper translates
            # forwarding targets back to global ids on egress.
            edge_conn.managed_insert("URoute", m.method_id, abstract_tor(rack))
        else:
            edge_conn.managed_insert("SRoute", m.method_id, ABSTRACT_SG)
    memo = {
        rack: MemoController(
            service.control(tenant_id, abstract_tor(rack)),
            metrics=net.metrics,
            tag=f"{tenant_id}.r{rack}",
        )
        for rack in range(num_racks)
    }
    refiller = TokenRefiller(
        net, edge_conn, schema, interval_ns=refill_interval_ns
    ).start()

    # -- applications ---------------------------------------------------------------
    sg_gid = tenant.abstract_to_gid[ABSTRACT_SG]
    edge_gid = tenant.abstract_to_gid[ABSTRACT_EDGE]
    servers = []
    for i, h in enumerate(server_hosts):
        server = RpcServer(
            net,
            h,
            schema,
            handlers,
            replica_index=i,
            sg_device=sg_gid,
            spec_unary=spec_unary,
            spec_sg=spec_sg,
            memo=memo[i // servers_per_rack],
        )
        service.register_channel(tenant_id, ABSTRACT_SG, server.channel)
        servers.append(server)
    slots_per_client = NUM_SLOTS // max(1, len(client_hosts))
    clients = []
    for c, h in enumerate(client_hosts):
        client = RpcClient(
            net,
            h,
            schema,
            edge_device=edge_gid,
            spec_unary=spec_unary,
            spec_sg=spec_sg,
            method_servers=method_server,
            slot_base=c * slots_per_client,
            window=min(window, slots_per_client),
            gather_rounds=gather_rounds,
            timeout_ns=timeout_ns,
        )
        service.register_channel(tenant_id, ABSTRACT_EDGE, client.channel)
        clients.append(client)

    rt = RpcTenant(
        service=service,
        tenant_id=tenant_id,
        tenant=tenant,
        schema=schema,
        clients=clients,
        servers=servers,
        memo=memo,
        refiller=refiller,
        edge_conn=edge_conn,
        spec_unary=spec_unary,
        spec_sg=spec_sg,
        num_racks=num_racks,
        servers_per_rack=servers_per_rack,
        method_rack=method_rack,
        method_server=method_server,
    )
    return rt
