"""NetCL host and device runtimes (§VI-C).

Host side: NetCL messages (:class:`Message`), packing/unpacking against
kernel specifications (:func:`pack` / :func:`unpack`), and managed-memory
access through :class:`DeviceConnection` (the P4Runtime stand-in).

Device side: :class:`NetCLDevice` — the small runtime that recognizes
NetCL headers, dispatches the kernel matching the requested computation,
and translates the kernel's forwarding action into a next-hop decision
through the 4-tuple (src, dst, from, to).
"""

from repro.runtime.message import (
    KernelSpec,
    Message,
    NetCLPacket,
    pack,
    unpack,
    ACT_CODES,
)
from repro.runtime.control import DeviceConnection
from repro.runtime.device import ForwardKind, ForwardDecision, NetCLDevice

__all__ = [
    "KernelSpec",
    "Message",
    "NetCLPacket",
    "pack",
    "unpack",
    "ACT_CODES",
    "DeviceConnection",
    "ForwardKind",
    "ForwardDecision",
    "NetCLDevice",
]
