"""Shared sizing constants for the reliability and slot protocols.

Before this module existed, the dedup-window and reply-cache sizes were
duplicated as magic defaults in :mod:`repro.reliability.channel` /
:mod:`repro.reliability.dedup` / :mod:`repro.reliability.device`, and the
slot-stream sizing lived separately in :mod:`repro.collective.protocol`.
:mod:`repro.rpc` would have copied them a third time; instead every layer
now reads the one definition here.

The values are protocol-coupled, not independent tunables:

* a sender's retransmission horizon must fit inside the receiver's
  ``DEFAULT_DEDUP_WINDOW``, or an old retransmission can be re-applied as
  "new" after the window slides past it;
* ``DEFAULT_REPLY_CACHE_CAPACITY`` bounds how far behind a client may lag
  (in outstanding requests) and still have a duplicated request answered
  by replay instead of silence;
* ``NUM_SLOTS`` is the switch-side slot count every windowed stream
  (:class:`~repro.collective.protocol.SlotStream` and the RPC
  scatter-gather stream) sizes its version-alternating state against;
* ``DEFAULT_SLOT_TIMEOUT_NS`` is the base per-slot retransmission timer
  matched to the simulated fabric's RTT under loss.
"""

from __future__ import annotations

#: Per-sender sliding dedup window (sequence numbers remembered).
DEFAULT_DEDUP_WINDOW = 4096

#: Host-side reply cache: recent (sender, seq) replies kept for replay.
DEFAULT_REPLY_CACHE_CAPACITY = 512

#: Device-side replay cache: recent forwarding decisions kept for replay.
DEFAULT_REPLAY_CACHE_CAPACITY = 2048

#: Switch-side protocol slots per windowed stream (version-alternated x2).
NUM_SLOTS = 256

#: Base per-slot retransmission timeout for windowed streams.
DEFAULT_SLOT_TIMEOUT_NS = 400_000
