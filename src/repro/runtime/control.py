"""Managed-memory access: the control-plane surface (R6, §V-B).

``_managed_`` memory is writable by host code through the device's
control-plane mechanisms — reliable, slow-path operations (kernel
configuration, resets, checkpointing, cache population).  In the paper the
host runtime speaks P4Runtime; here :class:`DeviceConnection` wraps a
device's :class:`~repro.ir.interp.GlobalState` and enforces the same
permissions: only ``_managed_`` register memory may be read/written, and
only ``_managed_ _lookup_`` tables may be mutated.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.interp import InterpError
from repro.ir.module import GlobalVar
from repro.runtime.device import NetCLDevice


class ManagedMemoryError(Exception):
    pass


class DeviceConnection:
    """``ncl::device_connection`` — a control-plane handle to one device."""

    def __init__(self, device: NetCLDevice) -> None:
        self.device = device
        self.module = device.module
        metrics = device.metrics
        self._reads = metrics.counter("managed.reads")
        self._writes = metrics.counter("managed.writes")
        self._table_ops = metrics.counter("managed.table_ops")

    def _resolve(self, name: str) -> GlobalVar:
        gv = self.module.globals.get(name)
        if gv is None:
            raise ManagedMemoryError(f"no global memory named '{name}'")
        if not gv.placed_at(self.device.device_id):
            raise ManagedMemoryError(
                f"'{name}' is not placed at device {self.device.device_id} "
                "(reference validity, Eq. 2)"
            )
        return gv

    # -- register memory -------------------------------------------------------
    def managed_read(self, name: str, index: int = 0) -> int:
        """``ncl::managed_read`` — read one element of managed memory.

        Reads are allowed for any register memory (useful for checkpoints);
        writes require ``_managed_``.
        """
        self._resolve(name)
        self._reads.inc()
        try:
            return self.device.state.cp_register_read(name, index)
        except InterpError as exc:
            raise ManagedMemoryError(str(exc)) from exc

    def managed_write(self, name: str, value: int, index: int = 0) -> None:
        """``ncl::managed_write`` — write one element of _managed_ memory."""
        gv = self._resolve(name)
        if not gv.space.is_managed:
            raise ManagedMemoryError(
                f"'{name}' is _net_ memory: writable only by device code (§V-B)"
            )
        self._writes.inc()
        try:
            self.device.state.cp_register_write(name, value, index)
        except InterpError as exc:
            raise ManagedMemoryError(str(exc)) from exc

    def managed_read_all(self, name: str):
        """Bulk read of a register array (checkpointing)."""
        self._resolve(name)
        self._reads.inc()
        return self.device.state.cp_register_read_all(name)

    # -- lookup memory ------------------------------------------------------------
    def managed_insert(
        self, name: str, key: int, value: Optional[int] = None, key_hi: Optional[int] = None
    ) -> None:
        """Insert an entry into ``_managed_ _lookup_`` memory."""
        gv = self._resolve(name)
        if not gv.space.is_lookup:
            raise ManagedMemoryError(f"'{name}' is not lookup memory")
        self._table_ops.inc()
        try:
            self.device.state.cp_table_insert(name, key, key_hi, value)
        except InterpError as exc:
            raise ManagedMemoryError(str(exc)) from exc

    def managed_modify(self, name: str, key: int, value: int) -> bool:
        gv = self._resolve(name)
        if not gv.space.is_lookup:
            raise ManagedMemoryError(f"'{name}' is not lookup memory")
        self._table_ops.inc()
        try:
            return self.device.state.cp_table_modify(name, key, value)
        except InterpError as exc:
            raise ManagedMemoryError(str(exc)) from exc

    def managed_remove(self, name: str, key: int) -> bool:
        gv = self._resolve(name)
        if not gv.space.is_lookup:
            raise ManagedMemoryError(f"'{name}' is not lookup memory")
        self._table_ops.inc()
        try:
            return self.device.state.cp_table_remove(name, key)
        except InterpError as exc:
            raise ManagedMemoryError(str(exc)) from exc

    def entries(self, name: str):
        """List the current entries of a lookup table (debug/monitoring)."""
        self._resolve(name)
        return self.device.state.cp_table_entries(name)
