"""The NetCL device runtime (§VI-C).

A small layer around the behavioral kernel executor.  For each incoming
packet it:

1. checks whether the packet is a NetCL message whose ``to`` matches
   ``device.id`` — otherwise the packet is a no-op at this device (the
   *no-implicit-computation* rule of §IV);
2. dispatches the kernel matching the requested computation id, exposing
   the message data (decoded per the kernel specification) and the NetCL
   header pseudo-fields (``msg.src`` etc.);
3. translates the kernel's exit action (Table II) into an updated 4-tuple
   plus a :class:`ForwardDecision` the base program / network executes.

``repeat()`` re-executes the kernel on the spot (recirculation), bounded
by ``max_repeats``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.ir.instructions import ActionKind
from repro.ir.interp import ActionOutcome, GlobalState, IRInterpreter, KernelMessage
from repro.ir.module import Function, Module
from repro.runtime.message import ACT_CODES, KernelSpec, NetCLPacket, NO_DEVICE
from repro.telemetry import MetricRegistry


class ForwardKind(str, Enum):
    TO_HOST = "to_host"
    TO_DEVICE = "to_device"
    MULTICAST = "multicast"
    DROP = "drop"


@dataclass
class ForwardDecision:
    kind: ForwardKind
    target: int = 0  # host id, device id, or multicast group id
    packet: Optional[NetCLPacket] = None


class DeviceRuntimeError(Exception):
    pass


class NetCLDevice:
    """One PDP device running compiled NetCL kernels."""

    def __init__(
        self,
        device_id: int,
        module: Module,
        kernels: Sequence[Function],
        *,
        seed: int = 0,
        max_repeats: int = 64,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.device_id = device_id
        self.module = module
        self.metrics = metrics or MetricRegistry()
        self._seed = seed
        self.state = GlobalState()
        self.interp = IRInterpreter(
            module, self.state, device_id=device_id, rng=random.Random(seed)
        )
        self.max_repeats = max_repeats
        self.kernels: dict[int, Function] = {}
        self.specs: dict[int, KernelSpec] = {}
        for fn in kernels:
            if fn.computation is None:
                continue
            if not fn.placed_at(device_id):
                continue
            if fn.computation in self.kernels:
                raise DeviceRuntimeError(
                    f"two kernels for computation {fn.computation} at device "
                    f"{device_id} (placement validity, Eq. 1)"
                )
            self.kernels[fn.computation] = fn
            self.specs[fn.computation] = KernelSpec.from_kernel(fn)
        self._seen = self.metrics.counter("kernel.dispatches")
        self._computed = self.metrics.counter("kernel.computed")
        self._noops = self.metrics.counter("kernel.noop_forwards")
        self._repeats = self.metrics.counter("kernel.repeats")
        # Per-outcome counters are resolved on first use and cached by the
        # enum member, so the per-packet path does no f-string formatting
        # or registry lookups.  Lazy (not eager) so the registry snapshot
        # only contains outcomes that actually occurred.
        self._action_counters: dict[ActionKind, object] = {}
        self._forward_counters: dict[ForwardKind, object] = {}

    # -- lifecycle ----------------------------------------------------------------
    def reset_state(self) -> None:
        """Model a device reboot: all register and lookup state is lost.

        The control plane must re-install any ``_managed_`` contents it
        needs (see :class:`repro.reliability.FailoverManager`).
        """
        self.state = GlobalState()
        self.interp = IRInterpreter(
            self.module, self.state, device_id=self.device_id,
            rng=random.Random(self._seed),
        )
        self.metrics.counter("device.resets").inc()

    def drain_control(self) -> list[ForwardDecision]:
        """Control packets (e.g. reliability ACKs) queued while processing
        the last packet; the transport executes them after the main
        forwarding decision.  The base runtime emits none."""
        return []

    # -- counter views (kept for compatibility with pre-telemetry callers) ---------
    @property
    def packets_seen(self) -> int:
        return int(self._seen.value)

    @property
    def packets_computed(self) -> int:
        return int(self._computed.value)

    # -- packet path --------------------------------------------------------------
    def process(self, packet: NetCLPacket) -> ForwardDecision:
        """Process one NetCL packet; returns the forwarding decision."""
        self._seen.value += 1
        if packet.to != self.device_id or packet.comp not in self.kernels:
            # No-op at this device: forward toward its target (§IV).
            self._noops.value += 1
            return self._forward_noop(packet)

        fn = self.kernels[packet.comp]
        spec = self.specs[packet.comp]
        msg = self._decode(packet, spec)

        outcome = ActionOutcome(ActionKind.REPEAT)
        repeats = 0
        while outcome.kind == ActionKind.REPEAT:
            if repeats > self.max_repeats:
                raise DeviceRuntimeError(
                    f"kernel '{fn.name}' exceeded {self.max_repeats} repeats"
                )
            outcome = self.interp.run_kernel(fn, msg)
            repeats += 1
        if repeats > 1:
            self._repeats.inc(repeats - 1)
        self._computed.inc()
        ctr = self._action_counters.get(outcome.kind)
        if ctr is None:
            ctr = self._action_counters[outcome.kind] = self.metrics.counter(
                f"kernel.action.{outcome.kind.value}"
            )
        ctr.inc()
        decision = self._apply_action(packet, spec, msg, outcome)
        ctr = self._forward_counters.get(decision.kind)
        if ctr is None:
            ctr = self._forward_counters[decision.kind] = self.metrics.counter(
                f"kernel.forward.{decision.kind.value}"
            )
        ctr.inc()
        return decision

    def _forward_noop(self, packet: NetCLPacket) -> ForwardDecision:
        if packet.to != NO_DEVICE and packet.to != self.device_id:
            return ForwardDecision(ForwardKind.TO_DEVICE, packet.to, packet)
        return ForwardDecision(ForwardKind.TO_HOST, packet.dst, packet)

    # -- codec ------------------------------------------------------------------------
    def _decode(self, packet: NetCLPacket, spec: KernelSpec) -> KernelMessage:
        fields: dict[str, int | list[int]] = {
            "__src": packet.src,
            "__dst": packet.dst,
            "__from": packet.from_,
            "__to": packet.to,
        }
        off = 0
        data = packet.data
        for f in spec.fields:
            nb = f.bytes_per_element
            if f.tail and off >= len(data):
                # §VIII tail extension: the sender omitted this field; the
                # device appends it (zero-initialized) to the message.
                fields[f.name] = 0 if f.count == 1 else [0] * f.count
                continue
            if f.count == 1:
                fields[f.name] = int.from_bytes(data[off : off + nb], "big")
            else:
                fields[f.name] = [
                    int.from_bytes(data[off + j * nb : off + (j + 1) * nb], "big")
                    for j in range(f.count)
                ]
            off += f.total_bytes
        return KernelMessage(fields)

    def _encode(self, spec: KernelSpec, msg: KernelMessage) -> bytes:
        out = bytearray()
        for f in spec.fields:
            nb = f.bytes_per_element
            mask = (1 << f.width_bits) - 1
            v = msg.fields.get(f.name, 0)
            if isinstance(v, list):
                for x in v:
                    out.extend((int(x) & mask).to_bytes(nb, "big"))
            else:
                out.extend((int(v) & mask).to_bytes(nb, "big"))
        return bytes(out)

    # -- action translation ----------------------------------------------------------------
    def _apply_action(
        self,
        packet: NetCLPacket,
        spec: KernelSpec,
        msg: KernelMessage,
        outcome: ActionOutcome,
    ) -> ForwardDecision:
        kind = outcome.kind
        out = packet.copy()
        out.data = self._encode(spec, msg)
        # This device becomes the message's previous computing node.
        out.from_ = self.device_id
        out.act = ACT_CODES[kind.value]

        if kind == ActionKind.DROP:
            return ForwardDecision(ForwardKind.DROP, packet=None)
        if kind == ActionKind.PASS:
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.TO_HOST, out.dst, out)
        if kind == ActionKind.SEND_TO_HOST:
            assert outcome.target is not None
            out.to = NO_DEVICE
            out.dst = packet.dst  # destination unchanged; exits to target host
            return ForwardDecision(ForwardKind.TO_HOST, outcome.target, out)
        if kind == ActionKind.SEND_TO_DEVICE:
            assert outcome.target is not None
            out.to = outcome.target
            return ForwardDecision(ForwardKind.TO_DEVICE, outcome.target, out)
        if kind == ActionKind.MULTICAST:
            assert outcome.target is not None
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.MULTICAST, outcome.target, out)
        if kind == ActionKind.REFLECT:
            # Back to the previous node: the last computing device, or the
            # source host when no device computed before us.
            prev_dev = packet.from_
            if prev_dev != NO_DEVICE and prev_dev != self.device_id:
                out.to = prev_dev
                return ForwardDecision(ForwardKind.TO_DEVICE, prev_dev, out)
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.TO_HOST, packet.src, out)
        if kind == ActionKind.REFLECT_LONG:
            out.to = NO_DEVICE
            return ForwardDecision(ForwardKind.TO_HOST, packet.src, out)
        raise DeviceRuntimeError(f"unhandled action {kind}")  # pragma: no cover
