"""NetCL messages and the wire codec (Fig. 6 / Fig. 10 of the paper).

A NetCL-over-UDP packet is::

    ETH | IP | UDP | NetCL header | NetCL data (kernel arguments) | payload

The NetCL header carries the 4-tuple ``(src, dst, from, to)`` (host ids /
device ids), the computation id, the action byte the device runtime sets,
and the data length.  The data section's layout is the *kernel
specification*: per-argument element counts and types, embedded into host
code by the compiler (§V-A) — here exposed as :class:`KernelSpec`.

``pack``/``unpack`` accept ``None`` per argument to skip copying (the
paper's NULL-argument optimization for fields a side only reads or only
the device writes).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.ir.module import Function

#: Forwarding action codes carried in the NetCL header's ``act`` byte.
ACT_CODES = {
    "pass": 0,
    "drop": 1,
    "send_to_host": 2,
    "send_to_device": 3,
    "multicast": 4,
    "repeat": 5,
    "reflect": 6,
    "reflect_long": 7,
}

_HEADER = struct.Struct("!HHHHBBH")  # src, dst, from, to, comp, act, len
HEADER_SIZE = _HEADER.size

#: ``from``/``to`` value meaning "no device".
NO_DEVICE = 0xFFFF

# -- reliability extension (repro.reliability) ----------------------------------
#
# A reliable NetCL packet carries a fixed-size *trailer* after the data
# section.  Because the header's ``len`` field delimits the data section,
# pre-reliability parsers skip the trailer transparently — the extension
# is backward- and forward-compatible on the wire.
#
#     NetCL header | NetCL data | magic(2) kind(1) seq(4) crc(4)
#
# ``kind`` packs the message kind in the low nibble and flag bits in the
# high nibble; ``crc`` is CRC-32 over the data section, letting the
# receiver detect in-network corruption and recover by retransmission.

_REL_TRAILER = struct.Struct("!HBII")  # magic, kind|flags, seq, crc
REL_TRAILER_SIZE = _REL_TRAILER.size
REL_MAGIC = 0x5EC1

REL_DATA = 0x1  #: a sequence-numbered kernel message
REL_ACK = 0x2  #: a device acknowledgment for one DATA sequence number

REL_FLAG_ACK_REQ = 0x10  #: sender requests a device-side ACK
REL_FLAG_REPLY = 0x20  #: host-generated reply echoing the request's seq
REL_FLAG_MORE = 0x40  #: reply fragment with more fragments to follow


@dataclass(frozen=True)
class FieldSpec:
    """One kernel argument in the message layout.

    ``tail`` marks the §VIII *message tail* extension: the field is
    optional on the wire — a sender may omit it entirely (shorter packet)
    and the device appends it to the message.
    """

    name: str
    width_bits: int
    count: int = 1
    tail: bool = False

    @property
    def bytes_per_element(self) -> int:
        return max(1, (self.width_bits + 7) // 8)

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_element * self.count


@dataclass(frozen=True)
class KernelSpec:
    """The full specification of one computation's messages (§V-A)."""

    computation: int
    fields: tuple[FieldSpec, ...]

    @classmethod
    def from_kernel(cls, fn: Function) -> "KernelSpec":
        return cls(
            computation=fn.computation or 0,
            fields=tuple(
                FieldSpec(a.name, a.type.width, a.spec, getattr(a, "tail", False))
                for a in fn.args
            ),
        )

    @property
    def data_bytes(self) -> int:
        return sum(f.total_bytes for f in self.fields)

    @property
    def size(self) -> int:
        """Total NetCL bytes on the wire (header + data)."""
        return HEADER_SIZE + self.data_bytes

    def field(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)


@dataclass
class Message:
    """Host-side message descriptor: ``ncl::message m(src, dst, comp, to)``.

    ``src``/``dst`` are host ids; ``to`` is the device whose computation
    ``comp`` is explicitly requested (§IV: no implicit computation).
    """

    src: int
    dst: int
    comp: int
    to: int
    from_: int = NO_DEVICE
    act: int = ACT_CODES["pass"]
    spec: Optional[KernelSpec] = None

    @property
    def size(self) -> int:
        if self.spec is None:
            raise ValueError("message has no kernel specification attached")
        return self.spec.size


Values = Sequence[Optional[Union[int, Sequence[int]]]]


def pack(msg: Message, spec: KernelSpec, values: Values) -> bytes:
    """Serialize a message.  ``values[i]`` is the i-th kernel argument
    (int, list of ints, or None to send zeros without copying)."""
    if len(values) != len(spec.fields):
        raise ValueError(
            f"computation {spec.computation} expects {len(spec.fields)} "
            f"arguments, got {len(values)}"
        )
    # §VIII tail extension: a trailing tail field whose value is None is
    # omitted from the wire entirely.
    fields = list(spec.fields)
    send_values = list(values)
    data_bytes = spec.data_bytes
    if fields and fields[-1].tail and send_values[-1] is None:
        data_bytes -= fields[-1].total_bytes
        fields.pop()
        send_values.pop()
    out = bytearray(
        _HEADER.pack(
            msg.src, msg.dst, msg.from_, msg.to, msg.comp, msg.act, data_bytes
        )
    )
    for f, v in zip(fields, send_values):
        nb = f.bytes_per_element
        mask = (1 << f.width_bits) - 1
        if v is None:
            out.extend(b"\x00" * f.total_bytes)
        elif isinstance(v, int):
            if f.count != 1:
                raise ValueError(f"field {f.name} expects {f.count} elements")
            out.extend((v & mask).to_bytes(nb, "big"))
        else:
            vals = list(v)
            if len(vals) != f.count:
                raise ValueError(
                    f"field {f.name} expects {f.count} elements, got {len(vals)}"
                )
            for x in vals:
                out.extend((int(x) & mask).to_bytes(nb, "big"))
    return bytes(out)


def unpack(data: bytes, spec: KernelSpec, out: Optional[Values] = None) -> tuple[Message, list]:
    """Deserialize a NetCL packet.  Returns (message, values).

    ``out`` mirrors the paper's API: a list with ``None`` for arguments to
    skip.  Skipped arguments come back as ``None``.
    """
    if len(data) < HEADER_SIZE:
        raise ValueError(f"short NetCL packet: {len(data)} bytes")
    src, dst, from_, to, comp, act, dlen = _HEADER.unpack_from(data, 0)
    msg = Message(src, dst, comp, to, from_=from_, act=act, spec=spec)
    if len(data) - HEADER_SIZE < dlen:
        raise ValueError("truncated NetCL data section")
    values: list = []
    off = HEADER_SIZE
    for i, f in enumerate(spec.fields):
        nb = f.bytes_per_element
        skip = out is not None and (i >= len(out) or out[i] is None)
        if f.tail and off - HEADER_SIZE >= dlen:
            # tail omitted by the sender: defaults to zeros
            values.append(
                None if skip else (0 if f.count == 1 else [0] * f.count)
            )
            continue
        if skip:
            values.append(None)
        elif f.count == 1:
            values.append(int.from_bytes(data[off : off + nb], "big"))
        else:
            values.append(
                [
                    int.from_bytes(data[off + j * nb : off + (j + 1) * nb], "big")
                    for j in range(f.count)
                ]
            )
        off += f.total_bytes
    return msg, values


@dataclass(slots=True)
class NetCLPacket:
    """An in-flight NetCL packet (header + raw data section).

    ``slots=True``: the simulator copies and touches packets on every hop,
    so attribute access and :meth:`copy` are hot; slots shave the per-
    instance dict and make field access a fixed-offset load.
    """

    src: int
    dst: int
    from_: int
    to: int
    comp: int
    act: int
    data: bytes
    #: simulation bookkeeping (bytes on the wire incl. pseudo ETH/IP/UDP)
    extra_bytes: int = 42  # ETH(14) + IP(20) + UDP(8)
    #: telemetry bookkeeping: INT-style trace id (never on the wire)
    trace_id: Optional[int] = None
    #: simulation bookkeeping: multicast members a shared transit replica
    #: still covers — the next-hop switch re-expands it (hierarchical
    #: fan-out; never on the wire)
    mcast_members: Optional[tuple] = None
    #: reliability trailer (repro.reliability): kind, flags, seq, data CRC.
    rel_kind: Optional[int] = None
    rel_flags: int = 0
    rel_seq: int = 0
    rel_crc: int = 0

    @classmethod
    def from_wire(cls, raw: bytes) -> "NetCLPacket":
        if len(raw) < HEADER_SIZE:
            raise ValueError(f"short NetCL packet: {len(raw)} bytes")
        src, dst, from_, to, comp, act, dlen = _HEADER.unpack_from(raw, 0)
        if len(raw) - HEADER_SIZE < dlen:
            raise ValueError("truncated NetCL data section")
        pkt = cls(src, dst, from_, to, comp, act, raw[HEADER_SIZE : HEADER_SIZE + dlen])
        trailer = raw[HEADER_SIZE + dlen :]
        if len(trailer) >= REL_TRAILER_SIZE:
            magic, kind_flags, seq, crc = _REL_TRAILER.unpack_from(trailer, 0)
            if magic == REL_MAGIC:
                pkt.rel_kind = kind_flags & 0x0F
                pkt.rel_flags = kind_flags & 0xF0
                pkt.rel_seq = seq
                pkt.rel_crc = crc
        return pkt

    def to_wire(self) -> bytes:
        raw = (
            _HEADER.pack(
                self.src, self.dst, self.from_, self.to, self.comp, self.act, len(self.data)
            )
            + self.data
        )
        if self.rel_kind is not None:
            raw += _REL_TRAILER.pack(
                REL_MAGIC, (self.rel_kind & 0x0F) | (self.rel_flags & 0xF0),
                self.rel_seq & 0xFFFFFFFF, self.rel_crc & 0xFFFFFFFF,
            )
        return raw

    # -- reliability helpers (repro.reliability) -------------------------------
    def stamp_reliability(self, kind: int, seq: int, flags: int = 0) -> "NetCLPacket":
        """Attach a reliability trailer; the CRC covers the data section."""
        self.rel_kind = kind
        self.rel_flags = flags
        self.rel_seq = seq
        self.rel_crc = zlib.crc32(self.data) & 0xFFFFFFFF
        return self

    def restamp_crc(self) -> None:
        """Refresh the CRC after the data section was rewritten (a device
        re-encoding kernel results into a forwarded reliable packet)."""
        self.rel_crc = zlib.crc32(self.data) & 0xFFFFFFFF

    @property
    def reliability_intact(self) -> bool:
        """Whether the data section still matches the trailer CRC."""
        if self.rel_kind is None:
            return True
        return (zlib.crc32(self.data) & 0xFFFFFFFF) == self.rel_crc

    @property
    def size_bytes(self) -> int:
        rel = REL_TRAILER_SIZE if self.rel_kind is not None else 0
        return self.extra_bytes + HEADER_SIZE + len(self.data) + rel

    def copy_into(self, out: "NetCLPacket") -> "NetCLPacket":
        """Overwrite every field of ``out`` with this packet's (the
        recycling path of :class:`PacketPool`)."""
        out.src = self.src
        out.dst = self.dst
        out.from_ = self.from_
        out.to = self.to
        out.comp = self.comp
        out.act = self.act
        out.data = self.data
        out.extra_bytes = self.extra_bytes
        out.trace_id = self.trace_id
        out.mcast_members = self.mcast_members
        out.rel_kind = self.rel_kind
        out.rel_flags = self.rel_flags
        out.rel_seq = self.rel_seq
        out.rel_crc = self.rel_crc
        return out

    def copy(self) -> "NetCLPacket":
        # Direct slot assignment: ~3x faster than re-running the dataclass
        # __init__, and copy() runs once per retransmission / multicast
        # replica / kernel output.
        return self.copy_into(NetCLPacket.__new__(NetCLPacket))


class PacketPool:
    """A bounded slab free-list for network-owned :class:`NetCLPacket`
    copies (multicast fan-out).

    The network layer creates short-lived packet copies when it replicates
    a multicast decision.  Copies that die *inside* the network layer —
    lost on a link, dropped for no-route or a downed node — are returned
    here and recycled by the next fan-out instead of allocating a fresh
    instance.  Copies that reach a host or a switch pipeline are
    *disowned* first: the application may retain them indefinitely, so
    they must never be recycled.

    Ownership is tracked by object identity, so releasing a packet the
    pool never issued (e.g. an application's own template) is a no-op.
    """

    __slots__ = ("_free", "_owned", "capacity", "hits", "misses")

    def __init__(self, capacity: int = 512) -> None:
        self._free: list[NetCLPacket] = []
        self._owned: set[int] = set()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def copy_of(self, packet: NetCLPacket) -> NetCLPacket:
        """A pool-owned copy of ``packet`` (recycled when possible)."""
        free = self._free
        if free:
            out = packet.copy_into(free.pop())
            self.hits += 1
        else:
            out = packet.copy()
            self.misses += 1
        self._owned.add(id(out))
        return out

    def release(self, packet: NetCLPacket) -> bool:
        """Return a pool-owned packet to the free list; no-op otherwise."""
        owned = self._owned
        if not owned:
            return False
        i = id(packet)
        if i not in owned:
            return False
        owned.discard(i)
        if len(self._free) < self.capacity:
            self._free.append(packet)
        return True

    def disown(self, packet: NetCLPacket) -> None:
        """Transfer ownership out of the pool (packet escapes to an app)."""
        if self._owned:
            self._owned.discard(id(packet))

    @property
    def free(self) -> int:
        return len(self._free)
