"""NetCL-over-UDP on real POSIX sockets (§VI-C, Fig. 10).

The paper's host runtime speaks UDP through ordinary sockets; this module
keeps that code path alive on loopback: hosts are UDP sockets, and a
switch is a background thread running a device runtime behind its own
socket.  The wire format is exactly :mod:`repro.runtime.message`'s.

This backend trades the simulator's virtual time for real OS networking;
it backs the quickstart example and the end-to-end socket tests.
"""

from __future__ import annotations

import select
import socket
import threading
from dataclasses import dataclass
from typing import Optional

from repro.runtime.device import ForwardDecision, ForwardKind, NetCLDevice
from repro.runtime.message import (
    KernelSpec,
    Message,
    NetCLPacket,
    pack,
    unpack,
)


@dataclass
class UdpEndpoint:
    host: str
    port: int

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host, self.port)


class UdpSwitch:
    """A NetCL device behind a UDP socket, processing packets in a thread.

    The switch needs an address book mapping host/device ids to UDP
    endpoints (the deployment information a real operator would push).
    Multicast groups map a group id to a list of host ids.
    """

    def __init__(
        self,
        device: NetCLDevice,
        *,
        bind: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.device = device
        self.metrics = device.metrics
        self._rx = self.metrics.counter("udp.rx_packets")
        self._rx_bad = self.metrics.counter("udp.rx_bad_packets")
        self._tx = self.metrics.counter("udp.tx_packets")
        self._unroutable = self.metrics.counter("udp.unroutable")
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((bind, port))
        self.sock.settimeout(0.1)
        self.endpoint = UdpEndpoint(*self.sock.getsockname())
        self.host_addrs: dict[int, tuple[str, int]] = {}
        self.device_addrs: dict[int, tuple[str, int]] = {}
        self.multicast_groups: dict[int, list[int]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- deployment -----------------------------------------------------------
    def register_host(self, host_id: int, addr: tuple[str, int]) -> None:
        self.host_addrs[host_id] = addr

    def register_device(self, device_id: int, addr: tuple[str, int]) -> None:
        self.device_addrs[device_id] = addr

    def add_multicast_group(self, gid: int, host_ids: list[int]) -> None:
        self.multicast_groups[gid] = list(host_ids)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "UdpSwitch":
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2)
        self.sock.close()

    def __enter__(self) -> "UdpSwitch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- datapath ---------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                raw, _ = self.sock.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                packet = NetCLPacket.from_wire(raw)
            except ValueError:
                self._rx_bad.inc()
                continue  # not a NetCL packet; base program would L2-forward
            self._rx.inc()
            decision = self.device.process(packet)
            self._forward(decision)
            drain = getattr(self.device, "drain_control", None)
            if drain is not None:
                for extra in drain():
                    self._forward(extra)

    def _send(self, packet: NetCLPacket, addr: tuple[str, int]) -> None:
        self._tx.inc()
        self.sock.sendto(packet.to_wire(), addr)

    def _forward(self, decision: ForwardDecision) -> None:
        if decision.kind == ForwardKind.DROP or decision.packet is None:
            return
        packet = decision.packet
        if decision.kind == ForwardKind.TO_HOST:
            addr = self.host_addrs.get(decision.target)
            if addr is None:
                self._unroutable.inc()
            else:
                packet.dst = decision.target
                self._send(packet, addr)
        elif decision.kind == ForwardKind.TO_DEVICE:
            addr = self.device_addrs.get(decision.target)
            if addr is None:
                self._unroutable.inc()
            else:
                self._send(packet, addr)
        elif decision.kind == ForwardKind.MULTICAST:
            for host_id in self.multicast_groups.get(decision.target, []):
                addr = self.host_addrs.get(host_id)
                if addr is None:
                    self._unroutable.inc()
                    continue
                copy = packet.copy()
                copy.dst = host_id
                self._send(copy, addr)


class UdpHost:
    """Host-side runtime endpoint: ``send()``/``recv()`` over a socket."""

    def __init__(self, host_id: int, *, bind: str = "127.0.0.1", port: int = 0) -> None:
        self.host_id = host_id
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((bind, port))
        self.endpoint = UdpEndpoint(*self.sock.getsockname())
        self.switch_addr: Optional[tuple[str, int]] = None

    def connect(self, switch: UdpSwitch) -> None:
        self.switch_addr = switch.endpoint.addr
        switch.register_host(self.host_id, self.endpoint.addr)

    def send(self, msg: Message, spec: KernelSpec, values) -> None:
        assert self.switch_addr is not None, "host not connected to a switch"
        msg.src = self.host_id
        self.sock.sendto(pack(msg, spec, values), self.switch_addr)

    def recv(self, spec: KernelSpec, *, timeout: float = 2.0, out=None):
        """Returns (message, values); raises ``socket.timeout`` on silence.

        Waits with :func:`select.select` rather than mutating the socket's
        timeout, so concurrent ``recv()`` calls with different timeouts
        (e.g. a reliability channel's retransmit loop next to an
        application receive) never clobber each other's deadline.
        """
        ready, _, _ = select.select([self.sock], [], [], timeout)
        if not ready:
            raise socket.timeout(f"no packet within {timeout}s")
        raw, _ = self.sock.recvfrom(65535)
        return unpack(raw, spec, out)

    def close(self) -> None:
        self.sock.close()

    def __enter__(self) -> "UdpHost":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
