"""``repro.service`` — multi-tenant INC-as-a-Service control plane.

The NetCL paper leaves deployment to "a deployment system managed by the
network operator" (§VIII); :mod:`repro.deploy` built that system for one
program at a time.  This package makes it a *service* (the ClickINC /
NetRPC operating model): one long-lived :class:`INCService` owns a
physical fabric and its live network, and tenants submit abstract
topologies against whatever headroom earlier tenants left behind.

* :mod:`repro.service.admission` — per-switch demand prediction (fitter
  reports or pre-fitter estimates) and residual-headroom bookkeeping;
* :mod:`repro.service.placement` — incremental backtracking placement
  into residual headroom;
* :mod:`repro.service.qos` — per-tenant priorities, ingress rate limits
  (deterministic token bucket), and latency SLO targets;
* :mod:`repro.service.orchestrator` — the tenant lifecycle: submit /
  evict / crash-driven live migration (journal replay + channel
  retargeting) / defragmentation, with per-tenant telemetry;
* :mod:`repro.service.workload` — JSON event plans replayed through the
  simulator (``python -m repro.service``).
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionError,
    DeviceDemand,
    demand_of,
    estimate_demand,
)
from repro.service.orchestrator import (
    GROUP_BASE,
    INCService,
    TENANT_BASE,
    TENANT_BLOCK,
    TRANSIT_BASE,
    Tenant,
    TenantDevice,
    TenantState,
)
from repro.service.placement import IncrementalPlanner
from repro.service.qos import TenantQoS, TokenBucket
from repro.service.workload import (
    ServicePlan,
    ServiceRunResult,
    default_service_plan,
    run_service_plan,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DeviceDemand",
    "GROUP_BASE",
    "INCService",
    "IncrementalPlanner",
    "ServicePlan",
    "ServiceRunResult",
    "TENANT_BASE",
    "TENANT_BLOCK",
    "TRANSIT_BASE",
    "Tenant",
    "TenantDevice",
    "TenantQoS",
    "TenantState",
    "TokenBucket",
    "default_service_plan",
    "demand_of",
    "estimate_demand",
    "run_service_plan",
]
