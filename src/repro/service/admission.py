"""Admission control: predict per-switch demand, track residual headroom.

Admission answers "will this tenant fit the fabric's *remaining*
resources?" before anything touches the live network.  Demand per
abstract device comes from the Tofino fitter's
:class:`~repro.tofino.report.ResourceReport` when the program was
compiled with ``fit=True``; for unfitted programs the pre-fitter models
of :mod:`repro.analysis.estimate` predict stages (SALU packing floor vs.
dependency-chain depth), SALU count, and SRAM blocks from IR shape alone.

:class:`AdmissionController` is pure bookkeeping — capacity comes from
the :class:`~repro.deploy.planner.PhysicalFabric`, reservations from the
placements the orchestrator commits — so the planner can always be
handed an up-to-date residual map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.estimate import kernel_chain_depth, kernel_salu_sites
from repro.core.driver import CompiledProgram
from repro.deploy.planner import PhysicalFabric, PlacementBreakdown
from repro.ir.module import Module
from repro.tofino.chip import ChipSpec, TOFINO_1


class AdmissionError(Exception):
    """A tenant submission was rejected.

    Carries the tenant id and, for resource-driven rejects, the
    planner's per-switch :class:`PlacementBreakdown` so the caller can
    see exactly which resource on which switch was the binding
    constraint.
    """

    def __init__(
        self,
        tenant_id: str,
        message: str,
        *,
        breakdown: Optional[PlacementBreakdown] = None,
    ) -> None:
        super().__init__(f"tenant {tenant_id!r}: {message}")
        self.tenant_id = tenant_id
        self.breakdown = breakdown


@dataclass(frozen=True)
class DeviceDemand:
    """Predicted per-switch resource demand of one abstract device."""

    stages: int
    sram_pct: float
    salu_pct: float

    def to_dict(self) -> dict:
        return {
            "stages": self.stages,
            "sram_pct": round(self.sram_pct, 2),
            "salu_pct": round(self.salu_pct, 2),
        }


def estimate_demand(module: Module, chip: ChipSpec = TOFINO_1) -> DeviceDemand:
    """Pre-fitter demand prediction from IR shape (repro.analysis.estimate).

    Stages are lower-bounded by the longest register dependency chain and
    by packing the kernel's SALU sites ``salus_per_stage`` at a time;
    SRAM comes from the chip's block model over register memory.
    """
    sites = 0
    chain = 0
    for fn in module.kernels():
        sites += len(kernel_salu_sites(fn))
        chain = max(chain, kernel_chain_depth(fn))
    stages = max(chain, -(-sites // chip.salus_per_stage), 1)
    sram_blocks = sum(
        chip.sram_blocks_for(gv.bits)
        for gv in module.globals.values()
        if not gv.space.is_lookup
    )
    return DeviceDemand(
        stages=stages,
        sram_pct=100.0 * sram_blocks / chip.total_sram_blocks,
        salu_pct=100.0 * sites / chip.total_salus,
    )


def demand_of(cp: CompiledProgram, chip: ChipSpec = TOFINO_1) -> DeviceDemand:
    """Demand of one compiled program: the fitter's report when present,
    the :mod:`repro.analysis.estimate` prediction otherwise."""
    if cp.report is not None:
        return DeviceDemand(
            stages=cp.report.stages_used,
            sram_pct=cp.report.sram_pct,
            salu_pct=cp.report.salus_pct,
        )
    return estimate_demand(cp.module, chip)


class AdmissionController:
    """Residual-headroom bookkeeping for one shared fabric."""

    def __init__(self, fabric: PhysicalFabric, chip: ChipSpec = TOFINO_1) -> None:
        self.fabric = fabric
        self.chip = chip
        #: switch id -> [stages, sram_pct, salu_pct] total NetCL capacity.
        self.capacity: dict[int, list[float]] = {
            sid: [sw.free_stages, sw.free_sram_pct, sw.free_salu_pct]
            for sid, sw in fabric.switches.items()
        }
        #: switch id -> [stages, sram_pct, salu_pct] currently reserved.
        self.used: dict[int, list[float]] = {
            sid: [0, 0.0, 0.0] for sid in fabric.switches
        }

    def residual(self) -> dict[int, list[float]]:
        """Per-switch headroom left for new tenants."""
        return {
            sid: [cap[i] - self.used[sid][i] for i in range(3)]
            for sid, cap in self.capacity.items()
        }

    def reserve(self, assignment: dict[int, int], demands: dict[int, DeviceDemand]) -> None:
        for dev, sid in assignment.items():
            d = demands[dev]
            u = self.used[sid]
            u[0] += d.stages
            u[1] += d.sram_pct
            u[2] += d.salu_pct

    def release(self, assignment: dict[int, int], demands: dict[int, DeviceDemand]) -> None:
        for dev, sid in assignment.items():
            d = demands[dev]
            u = self.used[sid]
            u[0] -= d.stages
            u[1] -= d.sram_pct
            u[2] -= d.salu_pct

    def set_capacity(self, switch_id: int, **headroom: float) -> None:
        """An operator headroom change (the base program grew or shrank)."""
        index = {"free_stages": 0, "free_sram_pct": 1, "free_salu_pct": 2}
        for key, value in headroom.items():
            if key not in index:
                raise TypeError(
                    f"set_capacity() got unknown headroom key {key!r}; "
                    f"valid keys: {sorted(index)}"
                )
            self.capacity[switch_id][index[key]] = value

    def overcommitted(self) -> list[int]:
        """Switches whose reservations exceed their (possibly shrunk)
        capacity — candidates for migration."""
        return [
            sid
            for sid, cap in self.capacity.items()
            if any(self.used[sid][i] > cap[i] + 1e-9 for i in range(3))
        ]

    def utilization(self) -> dict[int, dict]:
        """Per-switch capacity/used/residual snapshot (report surface)."""
        out: dict[int, dict] = {}
        for sid, cap in self.capacity.items():
            used = self.used[sid]
            out[sid] = {
                "capacity": {
                    "stages": cap[0], "sram_pct": round(cap[1], 2),
                    "salu_pct": round(cap[2], 2),
                },
                "used": {
                    "stages": used[0], "sram_pct": round(used[1], 2),
                    "salu_pct": round(used[2], 2),
                },
                "stage_utilization": round(used[0] / cap[0], 4) if cap[0] else 0.0,
            }
        return out
