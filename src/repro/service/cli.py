"""``python -m repro.service`` — replay a multi-tenant service workload.

Usage::

    python -m repro.service                      # the default plan
    python -m repro.service --seed 9 --json
    python -m repro.service --plan workload.json
    python -m repro.service --dump-plan > workload.json
    python -m repro.service --check-determinism

A plan is a JSON document: a fabric (switches with headroom, hosts,
links) plus a timeline of ``submit`` / ``evict`` / ``crash`` /
``restart`` / ``defragment`` / ``headroom`` events.  The replay prints
fabric utilization and a per-tenant SLO report; with the same plan two
runs produce bit-identical digests (``--check-determinism`` verifies).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.service.workload import (
    ServicePlan,
    ServiceRunResult,
    default_service_plan,
    run_service_plan,
)


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Replay a multi-tenant INC service workload",
    )
    p.add_argument(
        "--plan", type=Path, default=None,
        help="JSON ServicePlan file to replay (default: built-in plan)",
    )
    p.add_argument(
        "--seed", type=int, default=7,
        help="master seed for the built-in plan (ignored with --plan)",
    )
    p.add_argument(
        "--no-crash", action="store_true",
        help="drop the mid-run switch crash from the built-in plan",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    p.add_argument(
        "--dump-plan", action="store_true",
        help="print the effective ServicePlan JSON and exit",
    )
    p.add_argument(
        "--check-determinism", action="store_true",
        help="replay the plan twice and require identical digests",
    )
    return p


def _build_plan(args: argparse.Namespace) -> ServicePlan:
    if args.plan is not None:
        return ServicePlan.from_json(args.plan.read_text())
    return default_service_plan(
        args.seed, crash_at_us=None if args.no_crash else 400
    )


def _render(result: ServiceRunResult) -> str:
    lines = [
        f"service run: seed={result.seed} {'OK' if result.ok else 'FAILED'}",
        f"  {result.sim_ns / 1e6:.3f} ms simulated, digest {result.digest}",
        "",
        "fabric utilization:",
    ]
    for sid, u in result.report.get("fabric", {}).items():
        cap, used = u["capacity"], u["used"]
        lines.append(
            f"  switch {sid}: {used['stages']:g}/{cap['stages']:g} stages "
            f"({u['stage_utilization']:.0%}), {used['sram_pct']:.1f}% SRAM, "
            f"{used['salu_pct']:.1f}% SALUs reserved"
        )
    svc = result.report.get("service", {})
    lines.append(
        f"  tenants active={svc.get('tenants_active')} "
        f"rejects={svc.get('admission_rejects')} "
        f"migrations={svc.get('migrations')} "
        f"evictions={svc.get('evictions')}"
    )
    lines.append("")
    lines.append("tenants:")
    for tid, rep in result.report.get("tenants", {}).items():
        outcome = result.tenants.get(tid, {})
        slo = rep.get("slo", {})
        status = "REJECTED" if outcome.get("rejected") else rep.get("state")
        line = f"  {tid}: {status}"
        if not outcome.get("rejected"):
            line += (
                f" placement={rep.get('placement')}"
                f" migrations={rep.get('migrations')}"
                f" completed={outcome.get('completed')}/{outcome.get('expected')}"
            )
            if slo.get("max_latency_us") is not None:
                line += (
                    f" slo_p99={slo.get('observed_p99_us')}us"
                    f"/{slo.get('max_latency_us')}us"
                    f" ({'met' if slo.get('met') else 'MISSED'})"
                )
        lines.append(line)
        if rep.get("reject_reason"):
            lines.append(f"      reason: {rep['reject_reason']}")
    for r in result.rejected:
        bd = r.get("breakdown")
        if bd:
            lines.append(
                f"  {r['tenant']} breakdown: device {bd['device']} needs "
                f"{bd['need']['stages']} stages; "
                + "; ".join(
                    f"switch {sw['switch']}: {sw['reason']}"
                    for sw in bd["switches"]
                )
            )
    for err in result.errors:
        lines.append(f"  ERROR: {err}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    plan = _build_plan(args)
    if args.dump_plan:
        print(plan.to_json())
        return 0
    result = run_service_plan(plan)
    if args.check_determinism:
        again = run_service_plan(_build_plan(args))
        if again.digest != result.digest:
            print(
                f"NOT deterministic: {result.digest} != {again.digest}",
                file=sys.stderr,
            )
            return 2
        print(f"deterministic: two runs produced digest {result.digest}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
