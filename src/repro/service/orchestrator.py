"""The multi-tenant INC-as-a-Service control plane.

One :class:`INCService` owns a :class:`~repro.deploy.planner.PhysicalFabric`
and its *live* :class:`~repro.netsim.net.Network` for the whole service
lifetime.  Tenants come and go against it:

* :meth:`INCService.submit` — admission control (predicted per-switch
  stage/SRAM/SALU demand vs. residual headroom), incremental placement
  with backtracking, then instantiation of the tenant's devices into the
  running network.  Rejects carry the planner's per-switch
  :class:`~repro.deploy.planner.PlacementBreakdown`.
* :meth:`INCService.evict` — tear a tenant out and return its headroom.
* crash/heartbeat/migrate — a watchdog heartbeats every physical switch
  through the simulator; when one dies, every tenant device on it is
  re-placed into the remaining headroom, its managed state re-installed
  from the tenant's control-plane journal
  (:class:`~repro.reliability.failover.ReplicatedConnection`), and the
  tenant's :class:`~repro.reliability.channel.ReliableChannel`\\ s are
  retargeted so in-flight requests are re-driven.
* per-tenant QoS — deterministic token-bucket ingress rate limiting and
  an SLO report (observed p99 latency vs. the tenant's target).

Isolation model (the ClickINC "modules from different tenants share one
pipeline" premise): every tenant keeps the abstract device ids its
kernels were compiled against.  The service allocates each tenant a block
of fabric-global device ids and puts a :class:`TenantDevice` at the
network boundary: ingress translates global ids back to the tenant's
abstract namespace before the unmodified kernel runs; egress translates
abstract targets (``send_to_device``, ``reflect``, multicast groups)
forward into the global namespace.  No recompilation, no id rewriting in
tenant programs, and two tenants may both believe they own "device 1".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.deploy.planner import (
    AbstractTopology,
    DeploymentError,
    PhysicalFabric,
    fit_reason,
)
from repro.ir.module import Module
from repro.netsim import DEVICE, Link, Network
from repro.reliability.device import ReliableNetCLDevice
from repro.reliability.failover import ReplicatedConnection
from repro.runtime.control import DeviceConnection
from repro.runtime.device import ForwardDecision, ForwardKind, NetCLDevice
from repro.service.admission import (
    AdmissionController,
    AdmissionError,
    DeviceDemand,
    demand_of,
)
from repro.service.placement import IncrementalPlanner
from repro.service.qos import TenantQoS, TokenBucket
from repro.tofino.chip import ChipSpec, TOFINO_1

#: physical switch ``s`` appears in the live network as device TRANSIT_BASE+s.
TRANSIT_BASE = 10_000
#: tenant global-device-id blocks start here (16-bit packet ids cap ~0xFFFE).
TENANT_BASE = 20_000
#: translated multicast-group-id blocks start here.
GROUP_BASE = 30_000
#: ids per tenant block.
TENANT_BLOCK = 64


class TenantState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    REJECTED = "rejected"
    EVICTED = "evicted"


@dataclass
class Tenant:
    """One tenant's admission record and live resources."""

    tenant_id: str
    index: int
    topology: AbstractTopology
    qos: TenantQoS
    state: TenantState = TenantState.QUEUED
    #: abstract device id -> predicted demand.
    demands: Dict[int, DeviceDemand] = field(default_factory=dict)
    #: abstract device id -> physical switch currently hosting it.
    placement: Dict[int, int] = field(default_factory=dict)
    #: abstract device id <-> fabric-global device id.
    abstract_to_gid: Dict[int, int] = field(default_factory=dict)
    gid_to_abstract: Dict[int, int] = field(default_factory=dict)
    #: abstract multicast group id -> fabric-global group id.
    group_map: Dict[int, int] = field(default_factory=dict)
    #: abstract device id -> live boundary device.
    devices: Dict[int, "TenantDevice"] = field(default_factory=dict)
    #: abstract device id -> journaling control-plane connection.
    connections: Dict[int, ReplicatedConnection] = field(default_factory=dict)
    #: (abstract device id, channel) pairs retargeted on migration.
    channels: List[Tuple[int, object]] = field(default_factory=list)
    on_migrate: Optional[Callable[["INCService", "Tenant"], None]] = None
    reject_reason: Optional[str] = None
    migrations: int = 0

    @property
    def hosts(self) -> List[int]:
        return sorted(set(self.topology.host_attachments))


class TenantDevice:
    """The network-boundary wrapper around one tenant's compiled device.

    Registered in the live network under the tenant's *global* device id;
    the inner :class:`NetCLDevice` runs the unmodified kernel at the
    *abstract* id it was compiled for.  The wrapper translates ids both
    ways, enforces the tenant's ingress rate limit, and feeds the
    per-tenant telemetry counters.
    """

    def __init__(
        self,
        service: "INCService",
        tenant: Tenant,
        abstract_id: int,
        gid: int,
        compiled,
    ) -> None:
        self.service = service
        self.tenant = tenant
        self.abstract_id = abstract_id
        self.device_id = gid  # the network knows us by the global id
        self.compiled = compiled
        # The reliable runtime, not the plain one: tenants drive their
        # devices through ReliableChannels, so the device side must ACK,
        # dedup, and (optionally) enforce per-sender ordering.
        self.inner = ReliableNetCLDevice(
            abstract_id,
            compiled.module,
            compiled.kernels(),
            metrics=service.network.metrics,
            ordered=tenant.qos.ordered,
        )
        self.bucket: Optional[TokenBucket] = None
        m = service.network.metrics
        tag = tenant.tenant_id
        self._packets = m.counter(f"tenant.{tag}.packets")
        self._computed = m.counter(f"tenant.{tag}.computed")
        self._drops = m.counter(f"tenant.{tag}.drops")
        self._rate_limited = m.counter(f"tenant.{tag}.rate_limited")

    # -- lifecycle (Network.restart_switch calls this) -----------------------
    def reset_state(self) -> None:
        self.inner.reset_state()

    def drain_control(self) -> List[ForwardDecision]:
        return [self._translate_out(d) for d in self.inner.drain_control()]

    # -- packet path ---------------------------------------------------------
    def process(self, packet) -> ForwardDecision:
        self._packets.inc()
        if self.bucket is not None and not self.bucket.admit(
            self.service.network.sim.now_ns
        ):
            self._rate_limited.inc()
            return ForwardDecision(ForwardKind.DROP, packet=None)
        # Ingress: global ids -> the tenant's abstract namespace.
        if packet.to == self.device_id:
            packet.to = self.abstract_id
        if packet.from_ in self.tenant.gid_to_abstract:
            packet.from_ = self.tenant.gid_to_abstract[packet.from_]
        before = self.inner.packets_computed
        decision = self.inner.process(packet)
        self._computed.inc(self.inner.packets_computed - before)
        if decision.kind == ForwardKind.DROP:
            self._drops.inc()
        return self._translate_out(decision)

    def _translate_out(self, decision: ForwardDecision) -> ForwardDecision:
        """Egress: abstract targets -> the fabric-global namespace."""
        fwd = self.tenant.abstract_to_gid
        pkt = decision.packet
        if pkt is not None and pkt.from_ in fwd:
            pkt.from_ = fwd[pkt.from_]
        if decision.kind == ForwardKind.TO_DEVICE and decision.target in fwd:
            decision.target = fwd[decision.target]
            if pkt is not None:
                pkt.to = decision.target
        elif decision.kind == ForwardKind.MULTICAST:
            decision.target = self.tenant.group_map.get(
                decision.target, decision.target
            )
        return decision


class INCService:
    """Long-lived orchestrator for one shared fabric."""

    def __init__(
        self,
        fabric: PhysicalFabric,
        *,
        chip: ChipSpec = TOFINO_1,
        seed: int = 1,
        heartbeat_ns: int = 150_000,
        transit_processing_ns: int = 350,
        internal_latency_ns: int = 100,
    ) -> None:
        self.fabric = fabric
        self.chip = chip
        self.heartbeat_ns = heartbeat_ns
        self.internal_latency_ns = internal_latency_ns
        self.admission = AdmissionController(fabric, chip)
        self.planner = IncrementalPlanner(fabric)
        self.tenants: Dict[str, Tenant] = {}
        self.down: set[int] = set()
        self._next_index = 0
        self._queue: List[str] = []
        self._host_owner: Dict[int, str] = {}
        self._watchdog_armed = False

        # The live network: every physical switch becomes a transit node
        # running only the operator's base program.
        self.network = Network(seed=seed)
        for sid in sorted(fabric.switches):
            dev = NetCLDevice(TRANSIT_BASE + sid, Module(f"transit{sid}"), [])
            self.network.add_switch(dev, processing_ns=transit_processing_ns)
        for hid in fabric.hosts:
            self.network.add_host(hid)
        for a, b in fabric.links:
            self.network.link(self._net_key(a), self._net_key(b), Link())

        m = self.network.metrics
        self._tenants_active = m.gauge("service.tenants_active")
        self._submissions = m.counter("service.submissions")
        self._admission_rejects = m.counter("service.admission_rejects")
        self._evictions = m.counter("service.evictions")
        self._migrations = m.counter("service.migrations")
        self._migration_failures = m.counter("service.migration_failures")
        self._ops_replayed = m.counter("service.ops_replayed")
        self._heartbeats = m.counter("service.heartbeats")
        self._defrag_moves = m.counter("service.defrag_moves")

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _net_key(node):
        kind, ident = node
        return node if kind == "h" else DEVICE(TRANSIT_BASE + ident)

    def _internal_link(self) -> Link:
        """The in-chassis hop between a tenant slice and its host switch."""
        return Link(latency_ns=self.internal_latency_ns, bandwidth_gbps=400.0)

    def _running(self, tenant_id: str) -> Tenant:
        t = self.tenants.get(tenant_id)
        if t is None or t.state is not TenantState.RUNNING:
            state = "unknown" if t is None else t.state.value
            raise AdmissionError(tenant_id, f"not running (state: {state})")
        return t

    def device_id_of(self, tenant_id: str, abstract_device: int) -> int:
        """The fabric-global device id hosts must address packets to."""
        return self._running(tenant_id).abstract_to_gid[abstract_device]

    # -- tenant lifecycle ----------------------------------------------------
    def submit(
        self,
        tenant_id: str,
        topology: AbstractTopology,
        qos: Optional[TenantQoS] = None,
        *,
        on_migrate: Optional[Callable[["INCService", Tenant], None]] = None,
    ) -> Tenant:
        """Admit (or queue, or reject) one tenant and instantiate it live."""
        qos = qos or TenantQoS()
        self._submissions.inc()
        existing = self.tenants.get(tenant_id)
        if existing is not None and existing.state in (
            TenantState.RUNNING,
            TenantState.QUEUED,
        ):
            raise AdmissionError(tenant_id, f"already {existing.state.value}")
        tenant = Tenant(
            tenant_id, self._next_index, topology, qos, on_migrate=on_migrate
        )
        self._next_index += 1
        self.tenants[tenant_id] = tenant
        self._register_tenant_metrics(tenant)
        tenant.demands = {
            dev: demand_of(cp, self.chip) for dev, cp in topology.programs.items()
        }

        reason = self._validate(tenant)
        if reason is not None:
            self._admission_rejects.inc()
            tenant.state = TenantState.REJECTED
            tenant.reject_reason = reason
            raise AdmissionError(tenant_id, reason)
        try:
            placement = self.planner.plan_incremental(
                topology,
                tenant.demands,
                self.admission.residual(),
                exclude=frozenset(self.down),
            )
        except DeploymentError as exc:
            self._admission_rejects.inc()
            tenant.reject_reason = str(exc)
            if qos.queue_on_reject:
                tenant.state = TenantState.QUEUED
                self._queue.append(tenant_id)
                return tenant
            tenant.state = TenantState.REJECTED
            raise AdmissionError(
                tenant_id, str(exc), breakdown=exc.breakdown
            ) from exc
        self._instantiate(tenant, placement)
        return tenant

    def _validate(self, tenant: Tenant) -> Optional[str]:
        if not tenant.topology.programs:
            return "topology has no devices"
        if len(tenant.topology.programs) > TENANT_BLOCK:
            return f"topology exceeds {TENANT_BLOCK} devices"
        fabric_hosts = set(self.fabric.hosts)
        for h in tenant.hosts:
            if h not in fabric_hosts:
                return f"host {h} is not in the fabric"
            owner = self._host_owner.get(h)
            if owner is not None:
                return f"host {h} is already attached to tenant {owner!r}"
        return None

    def _register_tenant_metrics(self, tenant: Tenant) -> None:
        """Eagerly create the tenant's instruments so every telemetry
        export names them even before the first packet."""
        m = self.network.metrics
        tag = tenant.tenant_id
        for name in ("packets", "computed", "drops", "rate_limited"):
            m.counter(f"tenant.{tag}.{name}")
        m.counter(f"tenant.{tag}.migrations")
        m.histogram(f"tenant.{tag}.latency_ns")

    def _instantiate(self, tenant: Tenant, placement: Dict[int, int]) -> None:
        topology = tenant.topology
        base = TENANT_BASE + tenant.index * TENANT_BLOCK
        for i, dev in enumerate(sorted(topology.programs)):
            gid = base + i
            tenant.abstract_to_gid[dev] = gid
            tenant.gid_to_abstract[gid] = dev
        for dev in sorted(topology.programs):
            cp = topology.programs[dev]
            gid = tenant.abstract_to_gid[dev]
            tdev = TenantDevice(self, tenant, dev, gid, cp)
            if tenant.qos.max_pps is not None:
                tdev.bucket = TokenBucket(
                    tenant.qos.max_pps, tenant.qos.burst, self.network.sim.now_ns
                )
            proc = int(cp.report.latency.total_ns) if cp.report else 400
            self.network.add_switch(tdev, processing_ns=proc)
            self.network.link(
                DEVICE(gid),
                DEVICE(TRANSIT_BASE + placement[dev]),
                self._internal_link(),
            )
            tenant.devices[dev] = tdev
        gbase = GROUP_BASE + tenant.index * TENANT_BLOCK
        for i, g in enumerate(sorted(topology.multicast_groups)):
            global_g = gbase + i
            tenant.group_map[g] = global_g
            members = [
                m if m[0] == "h" else DEVICE(tenant.abstract_to_gid[m[1]])
                for m in topology.multicast_groups[g]
            ]
            self.network.add_multicast_group(global_g, members)
        for h in tenant.hosts:
            self._host_owner[h] = tenant.tenant_id
        tenant.placement = dict(placement)
        self.admission.reserve(placement, tenant.demands)
        tenant.state = TenantState.RUNNING
        self._tenants_active.inc()

    def evict(self, tenant_id: str) -> Tenant:
        """Tear a tenant out of the fabric and return its headroom."""
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise AdmissionError(tenant_id, "unknown tenant")
        if tenant.state is TenantState.QUEUED:
            self._queue.remove(tenant_id)
            tenant.state = TenantState.EVICTED
            self._evictions.inc()
            return tenant
        if tenant.state is not TenantState.RUNNING:
            raise AdmissionError(tenant_id, f"not running (state: {tenant.state.value})")
        for dev in sorted(tenant.devices):
            self.network.remove_switch(tenant.abstract_to_gid[dev])
        for g in tenant.group_map.values():
            self.network.multicast_groups.pop(g, None)
        for h in tenant.hosts:
            if self._host_owner.get(h) == tenant_id:
                del self._host_owner[h]
        self.admission.release(tenant.placement, tenant.demands)
        tenant.state = TenantState.EVICTED
        self._tenants_active.dec()
        self._evictions.inc()
        self._drain_queue()
        return tenant

    def _drain_queue(self) -> None:
        """Try queued tenants, highest priority first (FIFO within)."""
        for tenant_id in sorted(
            list(self._queue),
            key=lambda tid: (-self.tenants[tid].qos.priority, self.tenants[tid].index),
        ):
            tenant = self.tenants[tenant_id]
            reason = self._validate(tenant)
            if reason is not None:
                continue
            try:
                placement = self.planner.plan_incremental(
                    tenant.topology,
                    tenant.demands,
                    self.admission.residual(),
                    exclude=frozenset(self.down),
                )
            except DeploymentError as exc:
                tenant.reject_reason = str(exc)
                continue
            self._queue.remove(tenant_id)
            self._instantiate(tenant, placement)

    # -- failure handling / migration ---------------------------------------
    def start(self) -> "INCService":
        """Arm the watchdog: heartbeat every switch through the simulator."""
        if not self._watchdog_armed:
            self._watchdog_armed = True
            self.network.sim.after(self.heartbeat_ns, self._tick)
        return self

    def stop(self) -> None:
        self._watchdog_armed = False

    def _tick(self) -> None:
        if not self._watchdog_armed:
            return
        self._heartbeats.inc()
        for sid in sorted(self.fabric.switches):
            if sid in self.down:
                continue
            if not self.network.is_up(DEVICE(TRANSIT_BASE + sid)):
                self._handle_switch_down(sid)
        self.network.sim.after(self.heartbeat_ns, self._tick)

    def crash_switch(self, switch_id: int) -> None:
        """Take one physical switch down.  The watchdog notices on its
        next heartbeat and live-migrates every tenant device on it."""
        if switch_id not in self.fabric.switches:
            raise KeyError(f"switch {switch_id} is not in the fabric")
        self.network.crash_switch(TRANSIT_BASE + switch_id)

    def restart_switch(self, switch_id: int) -> None:
        """Bring a crashed switch back (empty) and retry queued tenants."""
        self.network.restart_switch(TRANSIT_BASE + switch_id)
        self.down.discard(switch_id)
        self._drain_queue()

    def _handle_switch_down(self, sid: int) -> None:
        self.down.add(sid)
        for tenant in sorted(self.tenants.values(), key=lambda t: t.index):
            if tenant.state is not TenantState.RUNNING:
                continue
            affected = {d: s for d, s in tenant.placement.items() if s == sid}
            if not affected:
                continue
            self.migrate(tenant, affected)

    def migrate(self, tenant: Tenant, affected: Dict[int, int]) -> bool:
        """Re-place ``affected`` (abstract device -> dead/overfull switch)
        into the remaining headroom; journal-replay managed state onto the
        new slices and re-drive the tenant's reliable channels."""
        demands = {d: tenant.demands[d] for d in affected}
        pinned = {
            d: s for d, s in tenant.placement.items() if d not in affected
        }
        self.admission.release(affected, demands)
        try:
            moves = self.planner.plan_incremental(
                tenant.topology,
                demands,
                self.admission.residual(),
                exclude=frozenset(self.down),
                pinned=pinned,
            )
        except DeploymentError as exc:
            # Nowhere to go: the devices stay stranded on the dead switch
            # (their reservation stays released — the capacity is gone).
            self._migration_failures.inc()
            tenant.reject_reason = str(exc)
            return False
        self.admission.reserve(affected, demands)
        self._move_devices(tenant, moves)
        return True

    def _move_devices(self, tenant: Tenant, moves: Dict[int, int]) -> None:
        demands = {d: tenant.demands[d] for d in moves}
        old = {d: tenant.placement[d] for d in moves}
        self.admission.release(old, demands)
        m = self.network.metrics
        for dev in sorted(moves):
            new_sid = moves[dev]
            gid = tenant.abstract_to_gid[dev]
            self.network.remove_link(
                DEVICE(gid), DEVICE(TRANSIT_BASE + old[dev])
            )
            self.network.link(
                DEVICE(gid), DEVICE(TRANSIT_BASE + new_sid), self._internal_link()
            )
            tdev = tenant.devices[dev]
            # The program physically ran on the old switch: its state died
            # with it.  Reboot the slice, then re-install managed memory
            # from the tenant's compacted control-plane journal.
            tdev.inner.reset_state()
            conn = tenant.connections.get(dev)
            if conn is not None:
                target = DeviceConnection(tdev.inner)
                self._ops_replayed.inc(conn.replay(target))
                conn.retarget(target)
            tenant.placement[dev] = new_sid
            self._migrations.inc()
            tenant.migrations += 1
            m.counter(f"tenant.{tenant.tenant_id}.migrations").inc()
        self.admission.reserve(moves, demands)
        moved = set(moves)
        for dev, ch in tenant.channels:
            if dev in moved:
                # Same global id — but retarget re-drives every pending
                # retransmit-mode request, recovering what the outage ate.
                ch.retarget(tenant.abstract_to_gid[dev])
        if tenant.on_migrate is not None:
            tenant.on_migrate(self, tenant)

    def defragment(self) -> int:
        """Bin-pack running tenants onto the lowest-id switches that fit
        (first-fit decreasing); migrates every device whose switch
        changes.  Returns the number of devices moved."""
        running = sorted(
            (t for t in self.tenants.values() if t.state is TenantState.RUNNING),
            key=lambda t: t.index,
        )
        free = {
            sid: list(cap)
            for sid, cap in self.admission.capacity.items()
            if sid not in self.down
        }
        targets: Dict[str, Dict[int, int]] = {}
        for tenant in running:
            chosen: Dict[int, int] = {}
            order = sorted(
                tenant.demands, key=lambda d: (-tenant.demands[d].stages, d)
            )
            for dev in order:
                need = tenant.demands[dev]
                new_sid = None
                for sid in sorted(free):
                    if sid in chosen.values():
                        continue
                    if fit_reason(
                        need.stages, need.sram_pct, need.salu_pct, free[sid]
                    ) is None:
                        new_sid = sid
                        break
                if new_sid is None:
                    # Can't pack this device anywhere: keep it (and charge
                    # its current switch) rather than strand it.
                    new_sid = tenant.placement[dev]
                chosen[dev] = new_sid
                free[new_sid][0] -= need.stages
                free[new_sid][1] -= need.sram_pct
                free[new_sid][2] -= need.salu_pct
            targets[tenant.tenant_id] = chosen
        total = 0
        for tenant in running:
            moves = {
                d: s
                for d, s in targets[tenant.tenant_id].items()
                if tenant.placement[d] != s
            }
            if moves:
                self._move_devices(tenant, moves)
                total += len(moves)
        self._defrag_moves.inc(total)
        return total

    def update_headroom(self, switch_id: int, **headroom: float) -> None:
        """The operator's base program grew or shrank on one switch.
        Validates keys against the fabric model; if reservations no
        longer fit, tenants are migrated off lowest-priority-first."""
        if switch_id not in self.fabric.switches:
            raise KeyError(f"switch {switch_id} is not in the fabric")
        sw = self.fabric.switches[switch_id]
        self.admission.set_capacity(switch_id, **headroom)  # validates keys
        for key, value in headroom.items():
            setattr(sw, key, value)
        while self.admission.overcommitted():
            sid = self.admission.overcommitted()[0]
            victims = sorted(
                (
                    t
                    for t in self.tenants.values()
                    if t.state is TenantState.RUNNING
                    and sid in t.placement.values()
                ),
                key=lambda t: (t.qos.priority, t.index),
            )
            if not victims:
                break
            tenant = victims[0]
            affected = {d: s for d, s in tenant.placement.items() if s == sid}
            if not self.migrate(tenant, affected):
                # Migration failed with the reservation released; books are
                # consistent again, but stop before thrashing.
                break

    # -- tenant-facing plumbing ----------------------------------------------
    def control(self, tenant_id: str, abstract_device: int) -> ReplicatedConnection:
        """A journaling control-plane handle to one tenant device; the
        journal is what migration replays onto a replacement slice."""
        tenant = self._running(tenant_id)
        conn = tenant.connections.get(abstract_device)
        if conn is None:
            inner = tenant.devices[abstract_device].inner
            conn = ReplicatedConnection(DeviceConnection(inner))
            tenant.connections[abstract_device] = conn
        return conn

    def register_channel(
        self, tenant_id: str, abstract_device: int, channel
    ) -> None:
        """Channels registered here are retargeted (pending requests
        re-driven) whenever their device migrates."""
        self._running(tenant_id).channels.append((abstract_device, channel))

    def observe_latency(self, tenant_id: str, latency_ns: int) -> None:
        """Feed one request latency into the tenant's SLO histogram."""
        self.network.metrics.histogram(
            f"tenant.{tenant_id}.latency_ns"
        ).observe(latency_ns)

    # -- reporting -----------------------------------------------------------
    def utilization(self) -> Dict[int, dict]:
        return self.admission.utilization()

    def tenant_report(self, tenant: Tenant) -> dict:
        m = self.network.metrics
        tag = tenant.tenant_id
        hist = m.histogram(f"tenant.{tag}.latency_ns")
        p99_us = hist.quantile(0.99) / 1000.0 if hist.count else None
        slo = {
            "max_latency_us": tenant.qos.max_latency_us,
            "observed_p99_us": round(p99_us, 2) if p99_us is not None else None,
            "met": (
                None
                if tenant.qos.max_latency_us is None or p99_us is None
                else p99_us <= tenant.qos.max_latency_us
            ),
        }
        out = {
            "state": tenant.state.value,
            "priority": tenant.qos.priority,
            "placement": {str(d): s for d, s in sorted(tenant.placement.items())},
            "device_ids": {
                str(d): g for d, g in sorted(tenant.abstract_to_gid.items())
            },
            "migrations": tenant.migrations,
            "counters": {
                name: int(m.value(f"tenant.{tag}.{name}"))
                for name in ("packets", "computed", "drops", "rate_limited")
            },
            "slo": slo,
        }
        if tenant.reject_reason is not None:
            out["reject_reason"] = tenant.reject_reason.splitlines()[0]
        return out

    def report(self) -> dict:
        """Fabric utilization + per-tenant state/counters/SLO snapshot."""
        m = self.network.metrics
        return {
            "sim_ns": self.network.sim.now_ns,
            "down_switches": sorted(self.down),
            "fabric": {str(k): v for k, v in sorted(self.utilization().items())},
            "service": {
                "tenants_active": int(m.value("service.tenants_active")),
                "submissions": int(m.value("service.submissions")),
                "admission_rejects": int(m.value("service.admission_rejects")),
                "evictions": int(m.value("service.evictions")),
                "migrations": int(m.value("service.migrations")),
                "migration_failures": int(m.value("service.migration_failures")),
                "ops_replayed": int(m.value("service.ops_replayed")),
                "heartbeats": int(m.value("service.heartbeats")),
                "defrag_moves": int(m.value("service.defrag_moves")),
            },
            "tenants": {
                tid: self.tenant_report(t)
                for tid, t in sorted(self.tenants.items())
            },
        }
