"""Incremental, residual-aware placement with backtracking.

The single-tenant :class:`~repro.deploy.planner.DeploymentPlanner` plans
against a *pristine* fabric.  The service plans against whatever headroom
already-running tenants left behind:

* candidates are scored by total shortest-path distance to the device's
  attached hosts and already-placed peers (the base planner's metric),
  tie-broken toward the switch with the most free stages (spread load,
  keep large contiguous holes for future tenants);
* placement is a depth-first search with backtracking: a greedy dead end
  (an early device taking the only switch a later device fits) is
  undone instead of rejecting the tenant;
* crashed or excluded switches never receive devices, and ``pinned``
  assignments (the tenant's unaffected devices during a partial
  migration) anchor distance scoring without being moved.

Across tenants, co-location on one switch is allowed whenever the
residual fits — that is the point of the service.  *Within* one tenant,
the base planner's one-device-per-switch rule is kept: distinct abstract
devices exist to parallelize the pipeline.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.deploy.planner import (
    AbstractTopology,
    DeploymentError,
    DeploymentPlanner,
    PlacementBreakdown,
    SwitchResidual,
    fit_reason,
)
from repro.netsim import DEVICE, HOST, NodeKey
from repro.service.admission import DeviceDemand


class IncrementalPlanner(DeploymentPlanner):
    """Places one tenant's abstract topology into residual headroom."""

    #: backtracking budget: candidate switches tried across the whole
    #: search before giving up (keeps worst-case planning time bounded).
    MAX_NODES = 20_000

    def plan_incremental(
        self,
        topology: AbstractTopology,
        demands: Dict[int, DeviceDemand],
        residual: Dict[int, List[float]],
        *,
        exclude: FrozenSet[int] = frozenset(),
        pinned: Optional[Dict[int, int]] = None,
    ) -> Dict[int, int]:
        """Assign each device in ``demands`` to a switch within
        ``residual`` headroom; raises :class:`DeploymentError` with a
        per-switch breakdown when no feasible assignment exists."""
        pinned = dict(pinned or {})
        graph = self.fabric.graph()
        for sid in exclude:
            if DEVICE(sid) in graph:
                graph.remove_node(DEVICE(sid))
        for host_id in topology.host_attachments:
            if HOST(host_id) not in graph:
                raise DeploymentError(f"host {host_id} is not in the fabric")
        paths = dict(nx.all_pairs_shortest_path_length(graph))

        free = {
            sid: list(headroom)
            for sid, headroom in residual.items()
            if sid not in exclude
        }
        order = sorted(demands, key=lambda d: (-demands[d].stages, d))
        assignment: Dict[int, int] = dict(pinned)
        state = {"nodes": 0, "breakdown": None}

        def neighbors_of(dev_id: int) -> List[NodeKey]:
            out: List[NodeKey] = [
                HOST(h)
                for h, d in topology.host_attachments.items()
                if d == dev_id
            ]
            for a, b in topology.device_edges:
                if a == dev_id and b in assignment:
                    out.append(DEVICE(assignment[b]))
                if b == dev_id and a in assignment:
                    out.append(DEVICE(assignment[a]))
            return out

        def candidates(
            dev_id: int,
        ) -> Tuple[List[int], List[SwitchResidual]]:
            need = demands[dev_id]
            neighbors = neighbors_of(dev_id)
            scored: List[Tuple[Tuple[float, float, int], int]] = []
            rejects: List[SwitchResidual] = []
            taken = set(assignment.values())
            for sid, headroom in free.items():
                residual_row = SwitchResidual(
                    sid, headroom[0], headroom[1], headroom[2], ""
                )
                if sid in taken:
                    residual_row.reason = "holds another device of this tenant"
                    rejects.append(residual_row)
                    continue
                reason = fit_reason(
                    need.stages, need.sram_pct, need.salu_pct, headroom
                )
                if reason is not None:
                    residual_row.reason = reason
                    rejects.append(residual_row)
                    continue
                key = DEVICE(sid)
                dist = 0.0
                unreachable: Optional[NodeKey] = None
                for n in neighbors:
                    hop = paths.get(key, {}).get(n)
                    if hop is None:
                        unreachable = n
                        break
                    dist += hop
                if unreachable is not None:
                    kind, ident = unreachable
                    residual_row.reason = (
                        f"unreachable from "
                        f"{'host' if kind == 'h' else 'device'} {ident}"
                    )
                    rejects.append(residual_row)
                    continue
                scored.append(((dist, -headroom[0], sid), sid))
            scored.sort()
            return [sid for _, sid in scored], rejects

        def place(i: int) -> bool:
            if i == len(order):
                return True
            dev_id = order[i]
            cands, rejects = candidates(dev_id)
            if not cands and state["breakdown"] is None:
                need = demands[dev_id]
                state["breakdown"] = PlacementBreakdown(
                    device=dev_id,
                    need_stages=need.stages,
                    need_sram_pct=need.sram_pct,
                    need_salu_pct=need.salu_pct,
                    switches=rejects,
                )
            for sid in cands:
                state["nodes"] += 1
                if state["nodes"] > self.MAX_NODES:
                    return False
                need = demands[dev_id]
                assignment[dev_id] = sid
                headroom = free[sid]
                headroom[0] -= need.stages
                headroom[1] -= need.sram_pct
                headroom[2] -= need.salu_pct
                if place(i + 1):
                    return True
                headroom[0] += need.stages
                headroom[1] += need.sram_pct
                headroom[2] += need.salu_pct
                del assignment[dev_id]
            return False

        if place(0):
            return {dev: assignment[dev] for dev in demands}
        breakdown: Optional[PlacementBreakdown] = state["breakdown"]
        detail = "\n" + breakdown.render() if breakdown is not None else ""
        raise DeploymentError(
            "no feasible placement into residual fabric headroom "
            f"(searched {state['nodes']} candidates)" + detail,
            breakdown=breakdown,
        )
