"""Per-tenant quality of service: rate limits, priorities, SLO targets.

A :class:`TenantQoS` travels with every submission.  The service enforces
``max_pps`` at the tenant's ingress devices with a deterministic token
bucket (packets beyond the budget are dropped and counted under
``tenant.<id>.rate_limited``), uses ``priority`` to order admission-queue
draining and headroom-shrink victim selection, and reports the
``max_latency_us`` target against the tenant's observed p99 in the SLO
section of :meth:`repro.service.INCService.report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantQoS:
    """What one tenant is entitled to."""

    #: higher drains from the admission queue first; lower is migrated or
    #: evicted first when headroom shrinks.
    priority: int = 0
    #: ingress rate limit in packets per simulated second (None = none).
    max_pps: Optional[float] = None
    #: SLO target: the tenant's p99 request latency in microseconds
    #: (None = no latency SLO).
    max_latency_us: Optional[float] = None
    #: burst allowance of the ingress token bucket, in packets.
    burst: int = 32
    #: queue instead of rejecting when the fabric can't fit the tenant.
    queue_on_reject: bool = False
    #: require per-sender FIFO delivery at the tenant's devices: the
    #: reliable device runtime drops out-of-order packets and lets the
    #: sender's retransmission recover them (slot-reuse protocols such as
    #: the aggregation app assume this).
    ordered: bool = False

    def to_dict(self) -> dict:
        return {
            "priority": self.priority,
            "max_pps": self.max_pps,
            "max_latency_us": self.max_latency_us,
            "burst": self.burst,
            "queue_on_reject": self.queue_on_reject,
            "ordered": self.ordered,
        }

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> "TenantQoS":
        d = d or {}
        return cls(
            priority=int(d.get("priority", 0)),
            max_pps=d.get("max_pps"),
            max_latency_us=d.get("max_latency_us"),
            burst=int(d.get("burst", 32)),
            queue_on_reject=bool(d.get("queue_on_reject", False)),
            ordered=bool(d.get("ordered", False)),
        )


class TokenBucket:
    """A deterministic ns-clocked token bucket.

    Integer-free of wall time: refills are computed from simulated
    nanoseconds, so two runs with the same seed admit and drop the exact
    same packets.
    """

    def __init__(self, rate_pps: float, burst: int, now_ns: int) -> None:
        self.rate_pps = float(rate_pps)
        self.burst = max(1, int(burst))
        self.tokens = float(self.burst)
        self._last_ns = now_ns

    def admit(self, now_ns: int) -> bool:
        elapsed = now_ns - self._last_ns
        if elapsed > 0:
            self.tokens = min(
                float(self.burst), self.tokens + elapsed * self.rate_pps / 1e9
            )
            self._last_ns = now_ns
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False
