"""Service workload replay: JSON event plans driving one shared fabric.

A :class:`ServicePlan` is a JSON document describing a fabric and a
timeline of control-plane events (``submit`` / ``evict`` / ``crash`` /
``restart`` / ``defragment`` / ``headroom``).  :func:`run_service_plan`
builds the :class:`~repro.service.orchestrator.INCService`, replays the
events through the simulator, drives each admitted tenant's application
traffic with an app driver, and returns a :class:`ServiceRunResult`
carrying per-tenant outcomes, the service report, and a SHA-256 digest
over everything application-visible — two runs of the same plan must
produce identical digests.

Drivers wire the paper's evaluation apps to the multi-tenant service:

* ``agg``   — SwitchML workers streaming tensors through their slice.
* ``cache`` — NetCache client/server/controller; cache lines installed
  through the service's journaling control plane survive migration.
* ``echo``  — a minimal stateless tenant (rate-limit and packing tests).
* ``bulk``  — an oversized multi-device tenant used to exercise
  resource-attributed admission rejects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import compile_netcl
from repro.deploy.planner import AbstractTopology, PhysicalFabric
from repro.netsim import DEVICE, HOST
from repro.reliability import BackoffPolicy, ReliableChannel
from repro.runtime import KernelSpec, Message
from repro.runtime.message import unpack
from repro.service.admission import AdmissionError
from repro.service.orchestrator import INCService, Tenant, TenantState
from repro.service.qos import TenantQoS


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def _node(tag: str):
    """Decode ``"h3"`` / ``"d2"`` link-endpoint notation."""
    kind, ident = tag[0], int(tag[1:])
    if kind == "h":
        return HOST(ident)
    if kind == "d":
        return DEVICE(ident)
    raise ValueError(f"bad node {tag!r}: want h<id> or d<id>")


# ---------------------------------------------------------------------------
# Plan
# ---------------------------------------------------------------------------

@dataclass
class ServicePlan:
    """A replayable service workload."""

    seed: int = 7
    horizon_ms: float = 20.0
    heartbeat_us: int = 150
    fabric: dict = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon_ms": self.horizon_ms,
            "heartbeat_us": self.heartbeat_us,
            "fabric": self.fabric,
            "events": self.events,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "ServicePlan":
        return cls(
            seed=int(d.get("seed", 7)),
            horizon_ms=float(d.get("horizon_ms", 20.0)),
            heartbeat_us=int(d.get("heartbeat_us", 150)),
            fabric=dict(d.get("fabric", {})),
            events=list(d.get("events", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServicePlan":
        return cls.from_dict(json.loads(text))

    def build_fabric(self) -> PhysicalFabric:
        fab = PhysicalFabric()
        for sw in self.fabric.get("switches", []):
            headroom = {k: v for k, v in sw.items() if k != "id"}
            fab.add_switch(int(sw["id"]), **headroom)
        for h in self.fabric.get("hosts", []):
            fab.add_host(int(h))
        for a, b in self.fabric.get("links", []):
            fab.link(_node(a), _node(b))
        return fab


def default_service_plan(seed: int = 7, *, crash_at_us: Optional[int] = 400) -> ServicePlan:
    """The acceptance workload: AGG and CACHE share a 4-switch ring, an
    oversized tenant is rejected with a resource-attributed error, and a
    mid-run switch crash live-migrates the CACHE tenant."""
    events = [
        {
            "at_us": 10, "kind": "submit", "tenant": "agg", "app": "agg",
            "hosts": [1, 2], "tensor_elements": 512, "window": 8,
            "qos": {"priority": 2, "ordered": True},
        },
        {
            "at_us": 20, "kind": "submit", "tenant": "cache", "app": "cache",
            "hosts": [3, 4],
            "qos": {"priority": 1, "max_latency_us": 4000.0},
        },
        {
            "at_us": 30, "kind": "submit", "tenant": "bulk", "app": "bulk",
            "hosts": [5], "devices": 3, "expect": "reject",
        },
    ]
    if crash_at_us is not None:
        events.append({"at_us": crash_at_us, "kind": "crash", "switch": 3})
    return ServicePlan(
        seed=seed,
        horizon_ms=20.0,
        heartbeat_us=150,
        fabric={
            "switches": [{"id": s, "free_stages": 12} for s in (1, 2, 3, 4)],
            "hosts": [1, 2, 3, 4, 5],
            "links": [
                ["d1", "d2"], ["d2", "d3"], ["d3", "d4"], ["d4", "d1"],
                ["h1", "d1"], ["h1", "d2"], ["h2", "d1"], ["h2", "d2"],
                ["h3", "d3"], ["h3", "d4"], ["h4", "d3"], ["h4", "d4"],
                ["h5", "d2"], ["h5", "d4"],
            ],
        },
        events=events,
    )


# ---------------------------------------------------------------------------
# App drivers
# ---------------------------------------------------------------------------

ECHO_SRC = (
    "_kernel(1) void echo(uint32_t x, uint32_t &y) "
    "{ y = x * 3 + 1; return ncl::reflect(); }"
)


class AppDriver:
    """Wires one tenant's hosts to its admitted slice and checks results."""

    def __init__(self, service: INCService, tenant_id: str, event: dict) -> None:
        self.service = service
        self.tenant_id = tenant_id
        self.event = event
        self.launched = False

    def build(self) -> AbstractTopology:  # pragma: no cover - interface
        raise NotImplementedError

    def launch(self, tenant: Tenant) -> None:
        self.launched = True

    def on_migrate(self, service: INCService, tenant: Tenant) -> None:
        pass

    def finish(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError


class AggDriver(AppDriver):
    """SwitchML aggregation as a tenant (abstract device 1, group 42)."""

    def build(self) -> AbstractTopology:
        from repro.apps import compile_app
        from repro.apps.agg import AGG_DEVICE, AGG_MCAST_GROUP

        self.hosts = [int(h) for h in self.event["hosts"]]
        self.elements = int(self.event.get("tensor_elements", 512))
        self.window = int(self.event.get("window", 8))
        self.compiled = compile_app(
            "agg", AGG_DEVICE, defines={"NUM_WORKERS": len(self.hosts)}
        )
        topo = AbstractTopology()
        topo.add_device(AGG_DEVICE, self.compiled)
        for h in self.hosts:
            topo.attach_host(h, AGG_DEVICE)
        topo.add_multicast_group(AGG_MCAST_GROUP, [HOST(h) for h in self.hosts])
        return topo

    def launch(self, tenant: Tenant) -> None:
        from repro.apps.agg import AGG_DEVICE, AggWorker

        super().launch(tenant)
        net = self.service.network
        gid = tenant.abstract_to_gid[AGG_DEVICE]
        spec = KernelSpec.from_kernel(self.compiled.kernels()[0])
        rng = net.child_rng(f"tenant:{self.tenant_id}:tensor")
        self.workers: List[AggWorker] = []
        for i, h in enumerate(self.hosts):
            tensor = [rng.randrange(0, 1 << 16) for _ in range(self.elements)]
            worker = AggWorker(
                net, h, i, spec, tensor, window=self.window, device_id=gid
            )
            worker.channel = ReliableChannel(
                net, worker.host, spec, target_device=gid
            )
            self.service.register_channel(self.tenant_id, AGG_DEVICE, worker.channel)
            self.workers.append(worker)
        for w in self.workers:
            w.start()

    def on_migrate(self, service: INCService, tenant: Tenant) -> None:
        """Post-migration resync: the slice rebooted, so every slot
        restarts at the earliest chunk any worker still has in flight."""
        if not self.launched:
            return
        slots: set[int] = set()
        for w in self.workers:
            slots.update(s for s, c in w._slot_chunk.items() if c is not None)
        for slot in sorted(slots):
            chunks = [
                c
                for c in (w._slot_chunk.get(slot) for w in self.workers)
                if c is not None
            ]
            if chunks:
                base = min(chunks)
                for w in self.workers:
                    w.resync_slot(slot, base)

    def finish(self) -> dict:
        errors: List[str] = []
        expected = [0] * self.elements
        for w in self.workers:
            for i, v in enumerate(w.tensor):
                expected[i] = (expected[i] + v) & 0xFFFFFFFF
        done = sum(1 for w in self.workers if w.done)
        if done != len(self.workers):
            errors.append(f"only {done}/{len(self.workers)} workers finished")
        for w in self.workers:
            if w.done and w.result != expected:
                errors.append(f"worker {w.worker_index} aggregated wrong values")
        return {
            "ok": not errors,
            "errors": errors,
            "completed": sum(w.stats.chunks_completed for w in self.workers),
            "expected": sum(w.num_chunks for w in self.workers),
            "retransmissions": sum(w.stats.retransmissions for w in self.workers),
            "checksum": _digest(
                {
                    "results": [w.result for w in self.workers],
                    "finished": [w.stats.finished_at_ns for w in self.workers],
                }
            ),
        }


def _value(key: int, salt: int) -> list[int]:
    from repro.apps.cache import VALUE_WORDS

    return [(key * 31 + i * salt + 7) & 0xFFFFFFFF for i in range(VALUE_WORDS)]


class CacheDriver(AppDriver):
    """NetCache as a tenant; cache lines live in the service's journaled
    control plane, so they follow the slice across migrations."""

    def build(self) -> AbstractTopology:
        from repro.apps import compile_app
        from repro.apps.cache import CACHE_DEVICE

        self.client_host, self.server_host = (int(h) for h in self.event["hosts"])
        self.compiled = compile_app("cache", CACHE_DEVICE)
        topo = AbstractTopology()
        topo.add_device(CACHE_DEVICE, self.compiled)
        topo.attach_host(self.client_host, CACHE_DEVICE)
        topo.attach_host(self.server_host, CACHE_DEVICE)
        return topo

    def launch(self, tenant: Tenant) -> None:
        from repro.apps.cache import (
            CACHE_DEVICE,
            CacheClient,
            CacheController,
            GET_REQ,
            KVServer,
            PUT_REQ,
        )

        super().launch(tenant)
        net = self.service.network
        gid = tenant.abstract_to_gid[CACHE_DEVICE]
        spec = KernelSpec.from_kernel(self.compiled.kernels()[0])
        self.server = KVServer(net, self.server_host, spec)
        self.client = CacheClient(net, self.client_host, spec, device_id=gid)
        self.client._server_id = self.server_host
        for h in (self.client.host, self.server.host):
            h.rx_overhead_ns = 3200
            h.tx_overhead_ns = 3200
        self.server.service_time_ns = 10_000
        self.client.channel = ReliableChannel(
            net,
            self.client.host,
            spec,
            target_device=gid,
            policy=BackoffPolicy(
                base_timeout_ns=400_000, max_timeout_ns=3_200_000, max_retries=12
            ),
        )
        self.server.channel = ReliableChannel(
            net, self.server.host, spec, target_device=gid
        )
        self.service.register_channel(self.tenant_id, CACHE_DEVICE, self.client.channel)
        self.service.register_channel(self.tenant_id, CACHE_DEVICE, self.server.channel)
        self.controller = CacheController(
            self.service.control(self.tenant_id, CACHE_DEVICE), self.server
        )

        cached = [100 + i for i in range(6)]
        served = [200 + i for i in range(6)]
        put = [300 + i for i in range(4)]
        for k in cached:
            self.server.store[k] = _value(k, 3)
            self.controller.install(k, self.server.store[k])
        for k in served:
            self.server.store[k] = _value(k, 5)

        self.expect: Dict[tuple, list[int]] = {}
        schedule: List[tuple] = []
        for k in put:
            schedule.append((PUT_REQ, k, _value(k, 7)))
            self.expect[(PUT_REQ, k)] = _value(k, 7)
        for _ in range(2):
            for hit_k, miss_k in zip(cached, served):
                schedule.append((GET_REQ, hit_k, None))
                self.expect[(GET_REQ, hit_k)] = _value(hit_k, 3)
                schedule.append((GET_REQ, miss_k, None))
                self.expect[(GET_REQ, miss_k)] = _value(miss_k, 5)
        for k in put:
            schedule.append((GET_REQ, k, None))
            self.expect[(GET_REQ, k)] = _value(k, 7)
        self.schedule = schedule

        spacing = int(self.event.get("spacing_us", 40)) * 1000
        t = net.sim.now_ns + 50_000
        for op, key, value in schedule:
            net.sim.at(
                t, lambda op=op, key=key, value=value: self.client.query(op, key, value)
            )
            t += spacing

    def finish(self) -> dict:
        from repro.apps.cache import GET_REQ

        errors: List[str] = []
        if len(self.client.completed) != len(self.schedule):
            errors.append(
                f"completed {len(self.client.completed)}/{len(self.schedule)} "
                f"queries ({self.client.channel.outstanding} outstanding)"
            )
        for rec in self.client.completed:
            want = self.expect.get((rec.op, rec.key))
            if want is None:
                errors.append(f"unexpected completion op={rec.op} key={rec.key}")
            elif rec.op == GET_REQ and list(rec.value or []) != want:
                errors.append(f"GET {rec.key} returned wrong value")
            if rec.latency_ns is not None:
                self.service.observe_latency(self.tenant_id, rec.latency_ns)
        hits = sum(1 for r in self.client.completed if r.served_by_cache)
        if not hits:
            errors.append("no query was served by the switch cache")
        return {
            "ok": not errors,
            "errors": errors,
            "completed": len(self.client.completed),
            "expected": len(self.schedule),
            "cache_hits": hits,
            "checksum": _digest(
                {
                    "records": [
                        [r.op, r.key, r.value, r.served_by_cache, r.done_ns]
                        for r in self.client.completed
                    ]
                }
            ),
        }


class EchoDriver(AppDriver):
    """A minimal stateless tenant: x in, 3x+1 reflected back."""

    def build(self) -> AbstractTopology:
        self.host_id = int(self.event["hosts"][0])
        self.requests = int(self.event.get("requests", 20))
        self.spacing_ns = int(self.event.get("spacing_us", 20)) * 1000
        self.compiled = compile_netcl(
            ECHO_SRC, 1, program_name=f"echo-{self.tenant_id}"
        )
        topo = AbstractTopology()
        topo.add_device(1, self.compiled)
        topo.attach_host(self.host_id, 1)
        return topo

    def launch(self, tenant: Tenant) -> None:
        super().launch(tenant)
        net = self.service.network
        gid = tenant.abstract_to_gid[1]
        self.spec = KernelSpec.from_kernel(self.compiled.kernels()[0])
        self.replies: Dict[int, int] = {}
        self.sent_ns: Dict[int, int] = {}
        host = net.hosts[self.host_id]

        def on_receive(packet, now_ns):
            _, (x, y) = unpack(packet.to_wire(), self.spec)
            self.replies[x] = y
            self.service.observe_latency(
                self.tenant_id, now_ns - self.sent_ns.get(x, now_ns)
            )

        host.on_receive = on_receive
        t = net.sim.now_ns + 10_000
        for i in range(self.requests):
            def send(i=i):
                self.sent_ns[i] = net.sim.now_ns
                host.send_message(
                    Message(src=self.host_id, dst=self.host_id, comp=1, to=gid),
                    self.spec,
                    [i, None],
                )

            net.sim.at(t, send)
            t += self.spacing_ns

    def finish(self) -> dict:
        errors = [
            f"echo({x}) returned {y}, want {3 * x + 1}"
            for x, y in sorted(self.replies.items())
            if y != 3 * x + 1
        ]
        m = self.service.network.metrics
        limited = int(m.value(f"tenant.{self.tenant_id}.rate_limited"))
        if not limited and len(self.replies) != self.requests:
            errors.append(f"completed {len(self.replies)}/{self.requests}")
        return {
            "ok": not errors,
            "errors": errors,
            "completed": len(self.replies),
            "expected": self.requests,
            "rate_limited": limited,
            "checksum": _digest({"replies": sorted(self.replies.items())}),
        }


class BulkDriver(AppDriver):
    """An oversized multi-device tenant (N full-pipeline AGG programs),
    used to exercise resource-attributed admission rejects."""

    def build(self) -> AbstractTopology:
        from repro.chaos.scenarios import compile_app_at

        devices = int(self.event.get("devices", 3))
        topo = AbstractTopology()
        for d in range(1, devices + 1):
            topo.add_device(
                d, compile_app_at("agg", d, defines={"NUM_WORKERS": 2})
            )
            if d > 1:
                topo.connect_devices(d - 1, d)
        topo.attach_host(int(self.event["hosts"][0]), 1)
        return topo

    def finish(self) -> dict:
        return {"ok": True, "errors": [], "completed": 0, "expected": 0}


DRIVERS = {
    "agg": AggDriver,
    "cache": CacheDriver,
    "echo": EchoDriver,
    "bulk": BulkDriver,
}


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

@dataclass
class ServiceRunResult:
    """What one service plan replay produced."""

    seed: int
    ok: bool
    errors: List[str]
    sim_ns: int
    digest: str
    tenants: Dict[str, dict] = field(default_factory=dict)
    rejected: List[dict] = field(default_factory=list)
    report: dict = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "errors": self.errors,
            "sim_ns": self.sim_ns,
            "digest": self.digest,
            "tenants": self.tenants,
            "rejected": self.rejected,
            "report": self.report,
        }


def run_service_plan(plan: ServicePlan) -> ServiceRunResult:
    """Replay one plan; deterministic for a fixed plan (same digest)."""
    fabric = plan.build_fabric()
    service = INCService(
        fabric, seed=plan.seed, heartbeat_ns=plan.heartbeat_us * 1000
    ).start()
    net = service.network
    drivers: Dict[str, AppDriver] = {}
    rejected: List[dict] = []
    errors: List[str] = []

    def do_submit(ev: dict) -> None:
        tenant_id = ev["tenant"]
        driver = DRIVERS[ev["app"]](service, tenant_id, ev)
        drivers[tenant_id] = driver
        topology = driver.build()
        qos = TenantQoS.from_dict(ev.get("qos"))
        try:
            tenant = service.submit(
                tenant_id, topology, qos, on_migrate=driver.on_migrate
            )
        except AdmissionError as exc:
            rejected.append(
                {
                    "tenant": tenant_id,
                    "error": str(exc).splitlines()[0],
                    "breakdown": (
                        exc.breakdown.to_dict() if exc.breakdown else None
                    ),
                }
            )
            return
        if tenant.state is TenantState.RUNNING:
            driver.launch(tenant)

    def handler(ev: dict):
        kind = ev["kind"]
        if kind == "submit":
            return lambda: do_submit(ev)
        if kind == "evict":
            return lambda: service.evict(ev["tenant"])
        if kind == "crash":
            return lambda: service.crash_switch(int(ev["switch"]))
        if kind == "restart":
            return lambda: service.restart_switch(int(ev["switch"]))
        if kind == "defragment":
            return lambda: service.defragment()
        if kind == "headroom":
            return lambda: service.update_headroom(
                int(ev["switch"]),
                **{k: v for k, v in ev.items() if k.startswith("free_")},
            )
        raise ValueError(f"unknown event kind {kind!r}")

    for ev in plan.events:
        net.sim.at(int(ev.get("at_us", 0)) * 1000, handler(ev))
    net.sim.run(until_ns=int(plan.horizon_ms * 1e6))
    service.stop()

    outcomes: Dict[str, dict] = {}
    rejected_ids = {r["tenant"] for r in rejected}
    for ev in plan.events:
        if ev["kind"] != "submit":
            continue
        tenant_id = ev["tenant"]
        driver = drivers[tenant_id]
        expect = ev.get("expect", "admit")
        if tenant_id in rejected_ids:
            outcome = {
                "ok": expect == "reject",
                "errors": (
                    [] if expect == "reject" else ["unexpectedly rejected"]
                ),
                "rejected": True,
            }
        elif driver.launched:
            outcome = driver.finish()
            if expect == "reject":
                outcome["ok"] = False
                outcome["errors"] = outcome.get("errors", []) + [
                    "expected a rejection but was admitted"
                ]
        else:
            outcome = {"ok": True, "errors": [], "queued": True}
        outcomes[tenant_id] = outcome
        for err in outcome.get("errors", []):
            errors.append(f"{tenant_id}: {err}")

    report = service.report()
    snapshot = net.metrics.snapshot()
    digest = _digest(
        {
            "seed": plan.seed,
            "outcomes": outcomes,
            "rejected": rejected,
            "report": report,
            "metrics": snapshot,
        }
    )
    return ServiceRunResult(
        seed=plan.seed,
        ok=not errors,
        errors=errors,
        sim_ns=net.sim.now_ns,
        digest=digest,
        tenants=outcomes,
        rejected=rejected,
        report=report,
        metrics=snapshot,
    )
