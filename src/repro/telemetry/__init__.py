"""``repro.telemetry`` — end-to-end observability.

Four pillars, mirroring how real INC deployments are observed:

* :mod:`repro.telemetry.metrics` — counters, gauges, ns-resolution
  histograms in a :class:`MetricRegistry`; no-ops when disabled.
* :mod:`repro.telemetry.trace` — INT-style per-packet hop tracing for
  the network simulator (opt-in).
* :mod:`repro.telemetry.profile` — wall-clock span profiling for the
  compiler (``ncc --profile``).
* :mod:`repro.telemetry.export` — text and JSON renderers for all of
  the above.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_INSTRUMENT,
)
from repro.telemetry.profile import NULL_PROFILER, Profiler, ProfileSpan
from repro.telemetry.trace import PacketTrace, PacketTracer, TraceHop, node_name
from repro.telemetry.export import (
    metrics_to_json,
    profile_to_json,
    render_metrics_text,
    render_profile_text,
    write_metrics_json,
    write_profile_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_INSTRUMENT",
    "Profiler",
    "ProfileSpan",
    "NULL_PROFILER",
    "PacketTrace",
    "PacketTracer",
    "TraceHop",
    "node_name",
    "render_profile_text",
    "render_metrics_text",
    "profile_to_json",
    "metrics_to_json",
    "write_profile_json",
    "write_metrics_json",
]
