"""Rendering and serialization of telemetry data.

Text renderers feed ``ncc --profile`` and ad-hoc debugging; the JSON
writers feed ``ncc --profile-json`` and the benchmark trajectory files
(``BENCH_<name>.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.profile import Profiler


def render_profile_text(profiler: Profiler, *, title: str = "compile profile") -> str:
    """Phase table + per-pass breakdown, aligned for terminal output."""
    lines = [f"-- {title} " + "-" * max(0, 58 - len(title))]
    phases = profiler.phases()
    total = sum(s.seconds for s in phases if s.parent is None) or 1e-12
    lines.append(f"  {'phase':<12} {'ms':>10} {'%':>7}")
    for sp in phases:
        if sp.parent is not None:
            continue
        lines.append(f"  {sp.name:<12} {sp.seconds * 1e3:>10.3f} {sp.seconds / total:>6.1%}")
    lines.append(f"  {'total':<12} {total * 1e3:>10.3f} {'':>7}")

    rows = profiler.pass_summary()
    if rows:
        lines.append("")
        lines.append(f"  {'pass':<18} {'runs':>5} {'ms':>10} {'changes':>8} {'Δinstrs':>8}")
        for row in rows:
            lines.append(
                f"  {row['name']:<18} {row['runs']:>5} {row['seconds'] * 1e3:>10.3f} "
                f"{row['changes']:>8} {row['instrs_delta']:>+8}"
            )
    return "\n".join(lines)


def profile_to_json(profiler: Profiler) -> str:
    return json.dumps(profiler.to_dict(), indent=2)


def write_profile_json(path: Union[str, Path], profiler: Profiler) -> Path:
    path = Path(path)
    path.write_text(profile_to_json(profiler) + "\n")
    return path


def render_metrics_text(registry: MetricRegistry, *, title: str = "metrics") -> str:
    lines = [f"-- {title} " + "-" * max(0, 58 - len(title))]
    for name, value in registry.snapshot().items():
        if isinstance(value, dict):
            detail = ", ".join(f"{k}={v}" for k, v in value.items())
            lines.append(f"  {name:<40} {detail}")
        else:
            lines.append(f"  {name:<40} {value}")
    return "\n".join(lines)


def metrics_to_json(registry: MetricRegistry) -> str:
    return json.dumps(registry.snapshot(), indent=2)


def write_metrics_json(path: Union[str, Path], registry: MetricRegistry) -> Path:
    path = Path(path)
    path.write_text(metrics_to_json(registry) + "\n")
    return path
