"""Counters, gauges, and histograms: the metrics core.

Dependency-free instruments with nanosecond-capable integer math.  Every
instrument lives in a :class:`MetricRegistry`; a registry created with
``enabled=False`` hands out shared no-op instruments, so instrumented
code never branches on "is telemetry on?" — the disabled path is a
single no-op method call.

Names are hierarchical dotted strings (``"link.tx_packets.h0->d1"``).
Hot-path code should hold on to the instrument object (registries cache
by name, but a dict lookup per packet is still a dict lookup).
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that goes up and down; remembers its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, v: Number) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def inc(self, n: Number = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: Number = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """A power-of-two-bucketed distribution (ns-resolution friendly).

    Bucket ``i`` covers values with bit length ``i``, i.e. ``[2**(i-1),
    2**i)``; observations are clamped at zero.  Exact count/sum/min/max
    are kept alongside, so means are exact and quantiles are bucket-upper
    -bound approximations (within 2x).
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    NUM_BUCKETS = 65  # values up to 2**64

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets = [0] * self.NUM_BUCKETS

    def observe(self, v: Number) -> None:
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        i = max(0, int(v)).bit_length()
        self.buckets[min(i, self.NUM_BUCKETS - 1)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Number:
        """Upper bound of the bucket holding the ``q``-quantile."""
        if not self.count:
            return 0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return self.max if i == self.NUM_BUCKETS - 1 else (1 << i) - 1
        return self.max or 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.1f})"


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    max_value = 0
    count = 0
    sum = 0
    min = None
    max = None
    mean = 0.0

    def inc(self, n: Number = 1) -> None:
        pass

    def dec(self, n: Number = 1) -> None:
        pass

    def set(self, v: Number) -> None:
        pass

    def observe(self, v: Number) -> None:
        pass

    def quantile(self, q: float) -> Number:
        return 0


NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricRegistry:
    """A named collection of instruments.

    ``counter``/``gauge``/``histogram`` get-or-create by name; a disabled
    registry returns :data:`NULL_INSTRUMENT` and records nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    # -- creation ------------------------------------------------------------
    def _get(self, name: str, cls) -> Instrument:
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} already registered as {type(inst).__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- queries -------------------------------------------------------------
    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def value(self, name: str) -> Number:
        inst = self._instruments.get(name)
        return getattr(inst, "value", 0) if inst is not None else 0

    def total(self, prefix: str) -> Number:
        """Sum of all counter/gauge values whose name starts with ``prefix``."""
        return sum(
            inst.value
            for name, inst in self._instruments.items()
            if name.startswith(prefix) and hasattr(inst, "value")
        )

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        self._instruments.clear()

    def snapshot(self) -> dict[str, object]:
        """All instruments as plain JSON-serializable values."""
        out: dict[str, object] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                out[name] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "min": inst.min,
                    "max": inst.max,
                    "mean": inst.mean,
                    "p50": inst.quantile(0.50),
                    "p99": inst.quantile(0.99),
                }
            elif isinstance(inst, Gauge):
                out[name] = {"value": inst.value, "max": inst.max_value}
            else:
                out[name] = inst.value
        return out
