"""Wall-clock span profiling for the compiler (Table IV instrumentation).

Two entry points:

* ``with profiler.span("frontend"):`` — a timed region measured by the
  profiler itself (phases of the ``ncc`` driver).
* ``profiler.record("dce", duration_ns=..., meta=...)`` — a completed
  measurement handed in by code that already timed itself (the pass
  manager, which must keep its own :class:`PassRecord` timing).

Spans nest: a span opened while another is active becomes its child, so
per-pass spans recorded during the "passes" phase roll up under it.
:data:`NULL_PROFILER` is the shared disabled instance — ``span()`` on it
is a no-op context and ``record()`` returns immediately, so callers
never branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class ProfileSpan:
    """One timed region."""

    name: str
    category: str = "phase"  # "phase" | "pass" | caller-defined
    start_ns: int = 0
    end_ns: int = 0
    parent: Optional["ProfileSpan"] = field(default=None, repr=False)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "duration_ns": self.duration_ns,
        }
        if self.parent is not None:
            d["parent"] = self.parent.name
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class _SpanContext:
    """Context manager opening/closing one live span."""

    __slots__ = ("_profiler", "span")

    def __init__(self, profiler: "Profiler", span: ProfileSpan) -> None:
        self._profiler = profiler
        self.span = span

    def __enter__(self) -> ProfileSpan:
        self.span.start_ns = time.perf_counter_ns()
        self._profiler._stack.append(self.span)
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.end_ns = time.perf_counter_ns()
        self._profiler._stack.pop()


class _NullSpanContext:
    """Disabled span: enters/exits without touching the clock."""

    __slots__ = ()
    _span = ProfileSpan("<disabled>")

    def __enter__(self) -> ProfileSpan:
        return self._span

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Profiler:
    """Collects :class:`ProfileSpan` records for one compilation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[ProfileSpan] = []
        self._stack: list[ProfileSpan] = []

    # -- recording -----------------------------------------------------------
    def span(self, name: str, category: str = "phase", **meta: Any):
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        sp = ProfileSpan(
            name,
            category,
            parent=self._stack[-1] if self._stack else None,
            meta=meta,
        )
        self.spans.append(sp)
        return _SpanContext(self, sp)

    def record(
        self,
        name: str,
        *,
        category: str = "pass",
        duration_ns: int,
        meta: Optional[dict[str, Any]] = None,
    ) -> None:
        """Store an externally timed span (no clock reads here)."""
        if not self.enabled:
            return
        sp = ProfileSpan(
            name,
            category,
            start_ns=0,
            end_ns=duration_ns,
            parent=self._stack[-1] if self._stack else None,
            meta=meta or {},
        )
        self.spans.append(sp)

    # -- queries -------------------------------------------------------------
    def phase_seconds(self, name: str) -> float:
        return sum(s.seconds for s in self.spans if s.category == "phase" and s.name == name)

    def phases(self) -> list[ProfileSpan]:
        return [s for s in self.spans if s.category == "phase"]

    def passes(self) -> list[ProfileSpan]:
        return [s for s in self.spans if s.category == "pass"]

    def total_seconds(self) -> float:
        """Wall time of all *top-level* spans (children excluded)."""
        return sum(s.seconds for s in self.spans if s.parent is None)

    def pass_summary(self) -> list[dict[str, Any]]:
        """Per-pass aggregate: runs, total seconds, changes, IR size delta.

        Ordered by first appearance, i.e. pipeline order.
        """
        agg: dict[str, dict[str, Any]] = {}
        for sp in self.passes():
            row = agg.setdefault(
                sp.name,
                {"name": sp.name, "runs": 0, "seconds": 0.0, "changes": 0, "instrs_delta": 0},
            )
            row["runs"] += 1
            row["seconds"] += sp.seconds
            row["changes"] += sp.meta.get("changes", 0)
            before = sp.meta.get("instrs_before")
            after = sp.meta.get("instrs_after")
            if before is not None and after is not None:
                row["instrs_delta"] += after - before
        return list(agg.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "phases": [
                {"name": s.name, "seconds": s.seconds, **({"meta": s.meta} if s.meta else {})}
                for s in self.phases()
            ],
            "passes": self.pass_summary(),
            "total_seconds": self.total_seconds(),
            "spans": [s.to_dict() for s in self.spans],
        }


#: Shared disabled profiler: safe to pass anywhere, records nothing.
NULL_PROFILER = Profiler(enabled=False)
