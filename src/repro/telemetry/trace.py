"""INT-style per-packet tracing for the network simulator.

In-band network telemetry records, at every hop, who handled the packet
and when.  The simulator equivalent: when tracing is enabled on a
:class:`~repro.netsim.net.Network`, every :class:`NetCLPacket` injected
into it is assigned a trace id, and each event in its life — injection,
link transmission, loss, device decision, host delivery — appends a
:class:`TraceHop`.  Multicast replication *forks* the trace: each
replica gets its own trace linked to the parent, so per-replica paths
stay queryable.

Tracing is strictly opt-in: a disabled tracer never allocates and every
hook is one early-returning method call.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Optional


def node_name(node) -> str:
    """``("h", 1)`` -> ``"h1"``, ``("d", 2)`` -> ``"d2"``; strings pass through."""
    if isinstance(node, tuple):
        return f"{node[0]}{node[1]}"
    return str(node)


@dataclass
class TraceHop:
    """One recorded event in a packet's life."""

    node: str  #: where it happened ("h1", "d2")
    kind: str  #: inject | tx | lost | arrive | decision | drop | deliver
    t_ns: int  #: simulation time of the event
    detail: str = ""  #: free-form (next hop, decision kind, drop cause)

    def to_dict(self) -> dict:
        d = {"node": self.node, "kind": self.kind, "t_ns": self.t_ns}
        if self.detail:
            d["detail"] = self.detail
        return d


@dataclass
class PacketTrace:
    """Every hop one packet (or one multicast replica) took."""

    trace_id: int
    parent: Optional[int] = None
    hops: list[TraceHop] = field(default_factory=list)

    @property
    def path(self) -> list[str]:
        """Distinct nodes visited, in order."""
        out: list[str] = []
        for hop in self.hops:
            if not out or out[-1] != hop.node:
                out.append(hop.node)
        return out

    def timeline(self) -> str:
        """Human-readable per-hop timeline."""
        lines = [f"trace {self.trace_id}" + (f" (replica of {self.parent})" if self.parent is not None else "")]
        t0 = self.hops[0].t_ns if self.hops else 0
        for hop in self.hops:
            detail = f"  {hop.detail}" if hop.detail else ""
            lines.append(f"  +{hop.t_ns - t0:>10} ns  {hop.node:>4}  {hop.kind:<8}{detail}")
        return "\n".join(lines)


class PacketTracer:
    """Assigns trace ids to packets and collects their hop records."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.traces: dict[int, PacketTrace] = {}
        self._ids = itertools.count(1)

    # -- recording -----------------------------------------------------------
    def begin(self, packet, *, parent: Optional[int] = None) -> Optional[int]:
        """Start tracing ``packet`` (idempotent); returns its trace id."""
        if not self.enabled:
            return None
        if packet.trace_id is not None and packet.trace_id in self.traces:
            return packet.trace_id
        tid = next(self._ids)
        packet.trace_id = tid
        self.traces[tid] = PacketTrace(tid, parent=parent)
        return tid

    def fork(self, parent_packet, child_packet) -> Optional[int]:
        """Multicast replication: give the replica its own linked trace."""
        if not self.enabled:
            return None
        child_packet.trace_id = None
        return self.begin(child_packet, parent=parent_packet.trace_id)

    def hop(self, packet, node, kind: str, t_ns: int, detail="") -> None:
        """Record one hop.  ``detail`` may be a zero-arg callable; it is
        only evaluated when the hop is actually recorded, so callers can
        defer expensive formatting (the hot path additionally guards the
        whole call behind :attr:`enabled`)."""
        if not self.enabled:
            return
        tid = getattr(packet, "trace_id", None)
        trace = self.traces.get(tid)
        if trace is not None:
            if callable(detail):
                detail = detail()
            trace.hops.append(TraceHop(node_name(node), kind, t_ns, detail))

    # -- queries -------------------------------------------------------------
    def trace_of(self, packet) -> Optional[PacketTrace]:
        return self.traces.get(getattr(packet, "trace_id", None))

    def replicas_of(self, trace_id: int) -> list[PacketTrace]:
        return [t for t in self.traces.values() if t.parent == trace_id]

    def __len__(self) -> int:
        return len(self.traces)

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per hop, grouped by trace, in recording order."""
        lines = []
        for trace in self.traces.values():
            for hop in trace.hops:
                rec = {"trace": trace.trace_id, **hop.to_dict()}
                if trace.parent is not None:
                    rec["parent"] = trace.parent
                lines.append(json.dumps(rec))
        return "\n".join(lines)

    def timeline(self, trace_id: Optional[int] = None) -> str:
        """Text timeline of one trace, or of all traces when id is None."""
        if trace_id is not None:
            if trace_id not in self.traces:
                raise KeyError(f"unknown trace id {trace_id!r}")
            return self.traces[trace_id].timeline()
        return "\n".join(t.timeline() for t in self.traces.values())
