"""Tofino chip resource model — the stand-in for Intel's proprietary bf-p4c.

The paper treats the Tofino compiler as a black box that either fits a
program onto the 12-stage RMT pipeline or rejects it, and reports resource
usage (stages, SRAM, TCAM, SALUs, VLIW, PHV) plus exact cycle costs.  This
package reimplements that contract:

* :mod:`repro.tofino.chip` — the chip specification (stage count and
  per-stage resource budgets, PHV container inventory, timing constants);
* :mod:`repro.tofino.tables` — :class:`LogicalTable` / :class:`PipelineSpec`,
  the target-independent description of match-action resources a program
  needs (produced by the TNA backend for generated code and by
  :mod:`repro.p4.resources` for handwritten P4);
* :mod:`repro.tofino.allocator` — dependency-aware greedy stage allocation
  with per-stage budgets ("fitting");
* :mod:`repro.tofino.phv` — container-granular PHV allocation;
* :mod:`repro.tofino.latency` — the cycle model behind Fig. 13.
"""

from repro.tofino.chip import ChipSpec, TOFINO_1
from repro.tofino.tables import (
    LogicalTable,
    MatchKind,
    PipelineSpec,
    DependencyKind,
)
from repro.tofino.allocator import StageAllocator, FitResult, FitError
from repro.tofino.phv import PhvAllocator, PhvReport
from repro.tofino.latency import LatencyModel, LatencyReport
from repro.tofino.report import ResourceReport, build_report

__all__ = [
    "ChipSpec",
    "TOFINO_1",
    "LogicalTable",
    "MatchKind",
    "PipelineSpec",
    "DependencyKind",
    "StageAllocator",
    "FitResult",
    "FitError",
    "PhvAllocator",
    "PhvReport",
    "LatencyModel",
    "LatencyReport",
    "ResourceReport",
    "build_report",
]
