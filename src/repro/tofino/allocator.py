"""Greedy, dependency-aware stage allocation ("fitting").

Mirrors what the paper relies on bf-p4c for: tables are layered by their
dependency graph (a match/action/control dependency forces the consumer
into a strictly later stage; independent tables may share one), then packed
greedily into stages subject to the per-stage budgets.  Exceeding the last
stage raises :class:`FitError` — the program "does not fit", the same
trial-and-error contract §VI-B describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.tofino.chip import ChipSpec, TOFINO_1
from repro.tofino.tables import DependencyKind, LogicalTable, PipelineSpec


class FitError(Exception):
    """The program does not fit the pipeline."""


@dataclass
class StageUsage:
    """Resources consumed within one physical stage."""

    sram_blocks: int = 0
    tcam_blocks: int = 0
    salus: int = 0
    vliw_slots: int = 0
    hash_engines: int = 0
    gateways: int = 0
    tables: int = 0
    names: list[str] = field(default_factory=list)

    def fits(self, t: LogicalTable, chip: ChipSpec) -> bool:
        return (
            self.sram_blocks + t.sram_blocks(chip) <= chip.sram_blocks_per_stage
            and self.tcam_blocks + t.tcam_blocks(chip) <= chip.tcam_blocks_per_stage
            and self.salus + t.salus <= chip.salus_per_stage
            and self.vliw_slots + t.vliw_slots <= chip.vliw_slots_per_stage
            and self.hash_engines + t.hash_engines <= chip.hash_engines_per_stage
            and self.gateways + (1 if t.is_gateway else 0) <= chip.gateways_per_stage
            and self.tables + t.table_slots() <= chip.tables_per_stage
        )

    def place(self, t: LogicalTable, chip: ChipSpec) -> None:
        self.sram_blocks += t.sram_blocks(chip)
        self.tcam_blocks += t.tcam_blocks(chip)
        self.salus += t.salus
        self.vliw_slots += t.vliw_slots
        self.hash_engines += t.hash_engines
        self.gateways += 1 if t.is_gateway else 0
        self.tables += t.table_slots()
        self.names.append(t.name)


@dataclass
class FitResult:
    """A successful placement."""

    spec: PipelineSpec
    chip: ChipSpec
    stage_of: dict[str, int]
    stages: list[StageUsage]
    #: dependency kind that forced each stage transition (for timing)
    stage_entry_dependency: dict[int, DependencyKind]

    @property
    def stages_used(self) -> int:
        return max((len(self.stages)), 0)

    def tables_in_stage(self, stage: int) -> list[str]:
        return self.stages[stage].names

    def dump(self) -> str:
        """Human-readable stage layout (what `bf-p4c --verbose` would show)."""
        lines = [f"pipeline '{self.spec.name}': {len(self.stages)} stage(s)"]
        for i, s in enumerate(self.stages):
            lines.append(
                f"  stage {i:2d}: sram={s.sram_blocks:3d} tcam={s.tcam_blocks:2d} "
                f"salu={s.salus} vliw={s.vliw_slots:3d} gw={s.gateways:2d}"
            )
            for name in s.names:
                lines.append(f"           - {name}")
        return "\n".join(lines)


class _ColocationConflict(FitError):
    def __init__(self, anchor: str, required_stage: int) -> None:
        super().__init__(f"colocation anchor {anchor} must move to stage {required_stage}")
        self.anchor = anchor
        self.required_stage = required_stage


class StageAllocator:
    def __init__(self, chip: ChipSpec = TOFINO_1) -> None:
        self.chip = chip

    def fit(self, spec: PipelineSpec) -> FitResult:
        """Greedy placement, with replays when a Register's later access
        site needs the shared (stage-local) Register in a later stage than
        the greedy choice — the anchor is then pinned further down and the
        placement re-run, the same back-and-forth bf-p4c performs."""
        hints: dict[str, int] = {}
        max_replays = 4 * len(spec.tables) + 8 * self.chip.stages
        for _ in range(max_replays):
            try:
                return self._fit_once(spec, hints)
            except _ColocationConflict as conflict:
                prev = hints.get(conflict.anchor, 0)
                if conflict.required_stage <= prev:
                    raise FitError(
                        f"'{spec.name}': colocation of '{conflict.anchor}' "
                        "cannot be satisfied"
                    )
                hints[conflict.anchor] = conflict.required_stage
        raise FitError(f"'{spec.name}': colocation replay limit exceeded")

    def _fit_once(self, spec: PipelineSpec, hints: dict[str, int]) -> FitResult:
        order = self._topo_order(spec)
        chip = self.chip
        stage_of: dict[str, int] = {}
        stages: list[StageUsage] = []
        stage_dep: dict[int, DependencyKind] = {}

        def ensure_stage(i: int) -> StageUsage:
            while len(stages) <= i:
                stages.append(StageUsage())
            return stages[i]

        for t in order:
            # Earliest legal stage from dependencies.  MATCH and ACTION
            # dependencies force a strictly later stage; CONTROL allows the
            # same stage — RMT gateways predicate tables within the stage
            # they live in, using values computed in earlier stages.
            earliest = 0
            entry_kind: Optional[DependencyKind] = None
            for dep in t.depends:
                if dep.producer not in stage_of:
                    continue  # dependency on something the base program owns
                if dep.kind == DependencyKind.CONTROL:
                    wanted = stage_of[dep.producer]
                else:
                    wanted = stage_of[dep.producer] + 1
                if wanted > earliest:
                    earliest = wanted
                    entry_kind = dep.kind if dep.kind != DependencyKind.CONTROL else None
                elif wanted == earliest and dep.kind == DependencyKind.MATCH:
                    entry_kind = dep.kind
            earliest = max(earliest, hints.get(t.name, 0))
            # Stage-local state: later access sites of one Register must
            # share the stage of the first site.
            pinned: Optional[int] = None
            if t.colocate is not None and chip.stage_local_state:
                anchor = stage_of.get(t.colocate)
                if anchor is None:
                    raise FitError(
                        f"'{spec.name}': '{t.name}' colocates with unplaced "
                        f"table '{t.colocate}'"
                    )
                if earliest > anchor:
                    if earliest >= chip.stages:
                        raise FitError(
                            f"'{spec.name}': register access '{t.name}' needs "
                            f"stage >= {earliest}; stateful memory is "
                            "stage-local (§V-D)"
                        )
                    raise _ColocationConflict(t.colocate, earliest)
                pinned = anchor

            placed = False
            s = earliest if pinned is None else pinned
            last = chip.stages if pinned is None else pinned + 1
            while s < last:
                usage = ensure_stage(s)
                if usage.fits(t, chip):
                    usage.place(t, chip)
                    stage_of[t.name] = s
                    if entry_kind is not None and s == earliest:
                        prev = stage_dep.get(s)
                        if prev != DependencyKind.MATCH:
                            stage_dep[s] = entry_kind
                    placed = True
                    break
                s += 1
            if not placed:
                if pinned is not None and pinned + 1 < chip.stages:
                    # The anchor's stage has no room for this access site;
                    # move the whole Register one stage down and replay.
                    raise _ColocationConflict(t.colocate, pinned + 1)  # type: ignore[arg-type]
                raise FitError(
                    f"'{spec.name}': table '{t.name}' does not fit any of the "
                    f"{chip.stages} stages (needs stage >= {earliest}; "
                    "try recompiling with different flags, §VI-B)"
                )
        return FitResult(spec, chip, stage_of, stages, stage_dep)

    def _topo_order(self, spec: PipelineSpec) -> list[LogicalTable]:
        """Critical-path list scheduling order.

        Tables are released in dependency order; among ready tables the one
        with the tallest downstream chain goes first, so tables feeding
        long tails (e.g. the AGG completion counter, whose result drives
        the multicast decision) are placed before wide independent fan-outs
        (the 32 aggregation registers).
        """
        by_name = {t.name: t for t in spec.tables}

        # Detect cycles and compute downstream heights.
        consumers: dict[str, list[str]] = {t.name: [] for t in spec.tables}
        indegree: dict[str, int] = {t.name: 0 for t in spec.tables}
        for t in spec.tables:
            wired: set[str] = set()
            for dep in t.depends:
                if dep.producer in by_name and dep.producer not in wired:
                    consumers[dep.producer].append(t.name)
                    indegree[t.name] += 1
                    wired.add(dep.producer)
            if t.colocate is not None and t.colocate in by_name and t.colocate not in wired:
                consumers[t.colocate].append(t.name)
                indegree[t.name] += 1

        height: dict[str, int] = {}

        def compute_height(name: str, stack: tuple[str, ...] = ()) -> int:
            if name in height:
                return height[name]
            if name in stack:
                raise FitError(
                    f"'{spec.name}': cyclic table dependency "
                    f"{' -> '.join(stack + (name,))}"
                )
            h = 1 + max(
                (compute_height(c, stack + (name,)) for c in consumers[name]),
                default=0,
            )
            height[name] = h
            return h

        for t in spec.tables:
            compute_height(t.name)

        # Kahn's algorithm with (height desc, declaration order) priority.
        decl_index = {t.name: i for i, t in enumerate(spec.tables)}
        import heapq

        ready = [
            (-height[t.name], decl_index[t.name], t.name)
            for t in spec.tables
            if indegree[t.name] == 0
        ]
        heapq.heapify(ready)
        order: list[LogicalTable] = []
        while ready:
            _, _, name = heapq.heappop(ready)
            order.append(by_name[name])
            for c in consumers[name]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    heapq.heappush(ready, (-height[c], decl_index[c], c))
        if len(order) != len(spec.tables):  # pragma: no cover - cycle caught above
            raise FitError(f"'{spec.name}': dependency graph is not a DAG")
        return order
