"""Chip specifications.

Numbers follow the publicly documented RMT/Tofino-1 architecture ([51] and
the Open-Tofino documents): 12 MAU stages per pipe, per-stage SRAM/TCAM
block inventories, 4 stateful ALUs per stage, a VLIW action engine, and a
PHV of 8/16/32-bit container groups.  Exact proprietary values are not
public; these are the literature's usual figures, and all evaluation
metrics are reported as *percentages of the spec*, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PhvSpec:
    """PHV container inventory (per Tofino-1 public docs: 64x8b, 96x16b,
    64x32b normal containers = 4096 bits)."""

    containers_8: int = 64
    containers_16: int = 96
    containers_32: int = 64

    @property
    def total_bits(self) -> int:
        return self.containers_8 * 8 + self.containers_16 * 16 + self.containers_32 * 32


@dataclass(frozen=True)
class TimingSpec:
    """Cycle model constants (1 cycle == 1 ns at the 1.0-GHz core clock).

    Inter-stage latency depends on the dependency type between consecutive
    stages: match-dependent stages must wait for the full previous-stage
    result; action-dependent stages only for the action; concurrent stages
    pipeline freely.  Parser cost grows with extracted header bytes.
    """

    parser_base_cycles: int = 60
    parser_cycles_per_byte: float = 0.6
    deparser_cycles: int = 40
    traffic_manager_cycles: int = 120
    stage_match_dependent_cycles: int = 22
    stage_action_dependent_cycles: int = 8
    stage_concurrent_cycles: int = 3
    stage_passthrough_cycles: int = 3  # stage with no active tables
    ns_per_cycle: float = 1.0


@dataclass(frozen=True)
class ChipSpec:
    """One pipe of a programmable switching ASIC."""

    name: str = "tofino-1"
    stages: int = 12
    # Per-stage budgets.
    sram_blocks_per_stage: int = 80  # 16 KB (128 Kb) blocks
    sram_block_bits: int = 16 * 1024 * 8
    tcam_blocks_per_stage: int = 24  # 44b x 512 entry blocks
    tcam_block_entries: int = 512
    salus_per_stage: int = 4
    vliw_slots_per_stage: int = 32
    hash_engines_per_stage: int = 6
    gateways_per_stage: int = 16
    tables_per_stage: int = 16
    #: Stateful memory is stage-local (true for RMT ASICs; false for the
    #: software switch) — drives register-access colocation constraints.
    stage_local_state: bool = True
    phv: PhvSpec = field(default_factory=PhvSpec)
    timing: TimingSpec = field(default_factory=TimingSpec)

    # -- totals ----------------------------------------------------------------
    @property
    def total_sram_blocks(self) -> int:
        return self.stages * self.sram_blocks_per_stage

    @property
    def total_tcam_blocks(self) -> int:
        return self.stages * self.tcam_blocks_per_stage

    @property
    def total_salus(self) -> int:
        return self.stages * self.salus_per_stage

    @property
    def total_vliw_slots(self) -> int:
        return self.stages * self.vliw_slots_per_stage

    def sram_blocks_for(self, bits: int) -> int:
        """SRAM blocks needed to hold ``bits`` of table/register data."""
        if bits <= 0:
            return 0
        return max(1, -(-bits // self.sram_block_bits))

    def tcam_blocks_for(self, entries: int) -> int:
        if entries <= 0:
            return 0
        return max(1, -(-entries // self.tcam_block_entries))


#: Default target: one pipe of a Tofino-1.
TOFINO_1 = ChipSpec()

#: The v1model software switch: effectively unconstrained; modeled as a
#: "chip" with generous budgets so every valid program fits.
V1MODEL = ChipSpec(
    name="v1model",
    stages=64,
    stage_local_state=False,
    sram_blocks_per_stage=4096,
    tcam_blocks_per_stage=4096,
    salus_per_stage=256,
    vliw_slots_per_stage=4096,
    hash_engines_per_stage=256,
    gateways_per_stage=4096,
    tables_per_stage=4096,
)
