"""Per-packet latency model (Fig. 13 of the paper).

Tofino guarantees line rate for any fitting program; what varies between
programs is the worst-case per-packet latency, which the Tofino compiler
reports as exact cycle costs.  The latency of a pass through one pipe is::

    parser + sum over stages of stage-crossing cost + deparser + TM

where a stage's crossing cost depends on how its tables relate to earlier
stages (match-dependent stages stall the longest, concurrent ones pipeline
freely) — the RMT timing model of [51].  The paper reports worst-case
latency with no egress bypass, i.e. ingress + TM + egress; we model the
egress pipe as a pass-through of the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tofino.allocator import FitResult
from repro.tofino.chip import ChipSpec
from repro.tofino.tables import DependencyKind


@dataclass
class LatencyReport:
    parser_cycles: float
    ingress_cycles: float
    tm_cycles: float
    egress_cycles: float
    deparser_cycles: float
    chip: ChipSpec

    @property
    def total_cycles(self) -> float:
        return (
            self.parser_cycles
            + self.ingress_cycles
            + self.tm_cycles
            + self.egress_cycles
            + self.deparser_cycles
        )

    @property
    def total_ns(self) -> float:
        return self.total_cycles * self.chip.timing.ns_per_cycle

    def __repr__(self) -> str:
        return f"LatencyReport({self.total_cycles:.0f} cycles = {self.total_ns:.0f} ns)"


class LatencyModel:
    def __init__(self, chip: ChipSpec) -> None:
        self.chip = chip

    def latency(self, fit: FitResult) -> LatencyReport:
        t = self.chip.timing
        parser = t.parser_base_cycles + t.parser_cycles_per_byte * fit.spec.parsed_bytes

        ingress = 0.0
        for s in range(self.chip.stages):
            usage = fit.stages[s] if s < len(fit.stages) else None
            if usage is None or not usage.names:
                ingress += t.stage_passthrough_cycles
                continue
            dep = fit.stage_entry_dependency.get(s)
            if dep == DependencyKind.MATCH or dep == DependencyKind.CONTROL:
                ingress += t.stage_match_dependent_cycles
            elif dep == DependencyKind.ACTION:
                ingress += t.stage_action_dependent_cycles
            else:
                ingress += t.stage_concurrent_cycles
            # SALU transactions add fixed per-stage cost.
            if usage.salus:
                ingress += 2

        # Worst case (no egress bypass): the packet traverses the egress
        # pipe too.  Our programs do all work at ingress, so egress is a
        # pass-through of all stages.
        egress = self.chip.stages * t.stage_passthrough_cycles

        return LatencyReport(
            parser_cycles=parser,
            ingress_cycles=ingress,
            tm_cycles=t.traffic_manager_cycles,
            egress_cycles=egress,
            deparser_cycles=t.deparser_cycles,
            chip=self.chip,
        )
