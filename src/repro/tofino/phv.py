"""Container-granular PHV allocation (Table VI of the paper).

Every header and metadata field carried across the pipe occupies PHV
container bits.  Containers come in 8/16/32-bit sizes; a field is packed
into the smallest container(s) that hold it, and two fields never share a
container here (a conservative model — bf-p4c packs more cleverly, but
occupancy *ratios* between programs are preserved, which is what Table VI
compares).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tofino.chip import ChipSpec, TOFINO_1


@dataclass
class PhvReport:
    used_8: int
    used_16: int
    used_32: int
    chip: ChipSpec
    header_bits: int
    metadata_bits: int
    local_bits: int

    @property
    def used_bits(self) -> int:
        return self.used_8 * 8 + self.used_16 * 16 + self.used_32 * 32

    @property
    def occupancy(self) -> float:
        """Worst-case PHV occupancy, as a fraction of all container bits."""
        return self.used_bits / self.chip.phv.total_bits

    def __repr__(self) -> str:
        return (
            f"PhvReport({self.used_8}x8b + {self.used_16}x16b + "
            f"{self.used_32}x32b = {self.used_bits}b, "
            f"{self.occupancy * 100:.1f}%)"
        )


class PhvError(Exception):
    pass


class PhvAllocator:
    def __init__(self, chip: ChipSpec = TOFINO_1) -> None:
        self.chip = chip

    def allocate(
        self,
        header_fields: list[int],
        metadata_fields: list[int],
        local_fields: list[int],
    ) -> PhvReport:
        """Pack fields (bit widths) into containers; raise if they exhaust
        the inventory."""
        used = {8: 0, 16: 0, 32: 0}

        def pack(bits: int) -> None:
            remaining = bits
            # Whole 32-bit containers for the bulk.
            while remaining > 16:
                used[32] += 1
                remaining -= 32
            if remaining > 8:
                used[16] += 1
                remaining -= 16
            if remaining > 0:
                used[8] += 1

        for f in header_fields + metadata_fields + local_fields:
            if f > 0:
                pack(f)

        spec = self.chip.phv
        # Rebalance across size classes: an overflowing 32-bit demand splits
        # into two 16-bit containers; an overflowing 16-bit demand into two
        # 8-bit containers; small fields may also be promoted upward when
        # only larger containers remain free.
        over_32 = max(0, used[32] - spec.containers_32)
        used[32] -= over_32
        used[16] += over_32 * 2
        over_16 = max(0, used[16] - spec.containers_16)
        used[16] -= over_16
        free_32 = spec.containers_32 - used[32]
        promote_16 = min(over_16, free_32)
        used[32] += promote_16
        used[8] += (over_16 - promote_16) * 2
        over_8 = max(0, used[8] - spec.containers_8)
        used[8] -= over_8
        free_16 = spec.containers_16 - used[16]
        promote_8 = min(over_8, free_16)
        used[16] += promote_8
        over_8 -= promote_8
        if over_8 > 0:
            free_32 = spec.containers_32 - used[32]
            promote_8_32 = min(over_8, free_32)
            used[32] += promote_8_32
            over_8 -= promote_8_32
        if over_8 > 0 or used[16] > spec.containers_16 or used[32] > spec.containers_32:
            raise PhvError(
                f"PHV allocation failed: demand {used} exceeds container "
                f"inventory ({spec.containers_8}x8b, {spec.containers_16}x16b, "
                f"{spec.containers_32}x32b)"
            )
        return PhvReport(
            used[8],
            used[16],
            used[32],
            self.chip,
            header_bits=sum(header_fields),
            metadata_bits=sum(metadata_fields),
            local_bits=sum(local_fields),
        )
