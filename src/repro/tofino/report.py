"""Aggregate resource reports in the shape of the paper's Table V / VI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tofino.allocator import FitResult, StageAllocator
from repro.tofino.chip import ChipSpec, TOFINO_1
from repro.tofino.latency import LatencyModel, LatencyReport
from repro.tofino.phv import PhvAllocator, PhvReport
from repro.tofino.tables import PipelineSpec


@dataclass
class ResourceReport:
    """Everything Tables V/VI and Fig. 13 report for one program."""

    name: str
    fit: FitResult
    phv: PhvReport
    latency: LatencyReport

    # -- Table V rows ------------------------------------------------------------
    @property
    def stages_used(self) -> int:
        return len(self.fit.stages)

    @property
    def sram_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * sum(s.sram_blocks for s in self.fit.stages) / chip.total_sram_blocks

    @property
    def tcam_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * sum(s.tcam_blocks for s in self.fit.stages) / chip.total_tcam_blocks

    @property
    def salus_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * sum(s.salus for s in self.fit.stages) / chip.total_salus

    @property
    def vliw_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * sum(s.vliw_slots for s in self.fit.stages) / chip.total_vliw_slots

    @property
    def worst_stage_sram_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * max(
            (s.sram_blocks for s in self.fit.stages), default=0
        ) / chip.sram_blocks_per_stage

    @property
    def worst_stage_tcam_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * max(
            (s.tcam_blocks for s in self.fit.stages), default=0
        ) / chip.tcam_blocks_per_stage

    @property
    def worst_stage_salus_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * max((s.salus for s in self.fit.stages), default=0) / chip.salus_per_stage

    @property
    def worst_stage_vliw_pct(self) -> float:
        chip = self.fit.chip
        return 100.0 * max(
            (s.vliw_slots for s in self.fit.stages), default=0
        ) / chip.vliw_slots_per_stage

    # -- Table VI rows --------------------------------------------------------------
    @property
    def phv_occupancy_pct(self) -> float:
        return 100.0 * self.phv.occupancy

    def row(self) -> dict[str, float]:
        return {
            "stages": self.stages_used,
            "sram_pct": round(self.sram_pct, 2),
            "tcam_pct": round(self.tcam_pct, 2),
            "salus_pct": round(self.salus_pct, 2),
            "vliw_pct": round(self.vliw_pct, 2),
            "worst_sram_pct": round(self.worst_stage_sram_pct, 2),
            "worst_tcam_pct": round(self.worst_stage_tcam_pct, 2),
            "worst_salus_pct": round(self.worst_stage_salus_pct, 2),
            "worst_vliw_pct": round(self.worst_stage_vliw_pct, 2),
            "phv_pct": round(self.phv_occupancy_pct, 2),
            "latency_ns": round(self.latency.total_ns, 1),
        }


def build_report(
    spec: PipelineSpec,
    chip: ChipSpec = TOFINO_1,
    *,
    local_fields: Optional[list[int]] = None,
) -> ResourceReport:
    """Fit, allocate PHV, and compute latency for one pipeline spec."""
    fit = StageAllocator(chip).fit(spec)
    phv = PhvAllocator(chip).allocate(
        list(spec.header_fields), list(spec.metadata_fields), list(local_fields or [])
    )
    latency = LatencyModel(chip).latency(fit)
    return ResourceReport(spec.name, fit, phv, latency)
