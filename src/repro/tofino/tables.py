"""Logical tables: the resource-level view of a P4 program.

A :class:`PipelineSpec` is the common currency between code generators and
the fitter: the TNA backend lowers NetCL IR into one, and
:mod:`repro.p4.resources` extracts one from handwritten P4.  Each
:class:`LogicalTable` is a unit the match-action pipeline must place in
some stage: a MAT, a Register+SALU, a gateway, a plain VLIW action, or a
hash computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.tofino.chip import ChipSpec


class MatchKind(str, Enum):
    NONE = "none"  # plain action / gateway / register: no match key
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"


class DependencyKind(str, Enum):
    """RMT inter-table dependency classes (drive both staging and timing)."""

    MATCH = "match"  # consumer matches on a value the producer writes
    ACTION = "action"  # consumer's action reads the producer's action output
    CONTROL = "control"  # consumer is predicated on the producer's result


@dataclass
class Dependency:
    producer: str
    kind: DependencyKind = DependencyKind.MATCH


@dataclass
class LogicalTable:
    """One stage-placeable unit and its resource demands."""

    name: str
    match_kind: MatchKind = MatchKind.NONE
    key_bits: int = 0
    entries: int = 0
    value_bits: int = 0  # action-data bits per entry
    register_bits: int = 0  # stateful storage attached (Register)
    salus: int = 0
    vliw_slots: int = 0
    hash_engines: int = 0
    is_gateway: bool = False
    #: Name of another table this one must share a stage with (distinct
    #: RegisterActions over one stage-local Register).
    colocate: Optional[str] = None
    depends: list[Dependency] = field(default_factory=list)
    #: provenance, e.g. the kernel name — used in reports
    origin: str = ""

    def add_dep(self, producer: str, kind: DependencyKind = DependencyKind.MATCH) -> None:
        if producer != self.name and all(d.producer != producer for d in self.depends):
            self.depends.append(Dependency(producer, kind))

    # -- resource demand ----------------------------------------------------------
    def sram_blocks(self, chip: ChipSpec) -> int:
        bits = self.register_bits
        if self.match_kind == MatchKind.EXACT and self.entries:
            bits += self.entries * (self.key_bits + self.value_bits + 8)  # +overhead
        elif self.match_kind == MatchKind.NONE and self.entries:
            bits += self.entries * (self.value_bits + 8)
        elif self.match_kind in (MatchKind.TERNARY, MatchKind.LPM, MatchKind.RANGE):
            # action data lives in SRAM even for TCAM-matched tables
            bits += self.entries * (self.value_bits + 8)
        return chip.sram_blocks_for(bits)

    def tcam_blocks(self, chip: ChipSpec) -> int:
        if self.match_kind in (MatchKind.TERNARY, MatchKind.LPM, MatchKind.RANGE):
            width_blocks = max(1, -(-self.key_bits // 44))
            return width_blocks * chip.tcam_blocks_for(max(1, self.entries))
        return 0

    def table_slots(self) -> int:
        return 0 if self.is_gateway else 1


@dataclass
class PipelineSpec:
    """Everything the fitter needs about one compiled program."""

    name: str
    tables: list[LogicalTable] = field(default_factory=list)
    #: Header bits carried through the pipe (for the PHV allocator):
    #: list of field bit-widths.
    header_fields: list[int] = field(default_factory=list)
    #: Metadata / local variable bit-widths.
    metadata_fields: list[int] = field(default_factory=list)
    #: Parsed header bytes (drives parser latency).
    parsed_bytes: int = 64

    def add(self, table: LogicalTable) -> LogicalTable:
        if any(t.name == table.name for t in self.tables):
            raise ValueError(f"duplicate logical table {table.name}")
        self.tables.append(table)
        return table

    def table(self, name: str) -> LogicalTable:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(name)

    def merge(self, other: "PipelineSpec", prefix: str = "") -> None:
        """Merge another spec (e.g. the base P4 program) into this one."""
        for t in other.tables:
            copy = LogicalTable(
                name=f"{prefix}{t.name}",
                match_kind=t.match_kind,
                key_bits=t.key_bits,
                entries=t.entries,
                value_bits=t.value_bits,
                register_bits=t.register_bits,
                salus=t.salus,
                vliw_slots=t.vliw_slots,
                hash_engines=t.hash_engines,
                is_gateway=t.is_gateway,
                colocate=f"{prefix}{t.colocate}" if t.colocate else None,
                depends=[Dependency(f"{prefix}{d.producer}", d.kind) for d in t.depends],
                origin=t.origin or other.name,
            )
            self.tables.append(copy)
        self.header_fields.extend(other.header_fields)
        self.metadata_fields.extend(other.metadata_fields)
        self.parsed_bytes = max(self.parsed_bytes, other.parsed_bytes)

    @property
    def total_vliw(self) -> int:
        return sum(t.vliw_slots for t in self.tables)

    @property
    def total_salus(self) -> int:
        return sum(t.salus for t in self.tables)
