"""Shared fixtures: canonical NetCL programs from the paper."""

from __future__ import annotations

import pytest

from repro.core import compile_netcl
from repro.lang import analyze, lower_to_ir, parse_source

#: Figure 4 of the paper: the in-network read-only cache.
FIG4_CACHE = r"""
#define CMS_HASHES 3
#define THRESH 128
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"""

#: A tiny kernel exercising most scalar features.
MINI_KERNEL = r"""
_net_ unsigned counter[16];

_kernel(1) void bump(unsigned slot, unsigned delta, unsigned &total) {
  total = ncl::atomic_add_new(&counter[slot & 15], delta);
  if (total > 100)
    return ncl::drop();
  return ncl::reflect();
}
"""


@pytest.fixture
def fig4_module():
    return lower_to_ir(analyze(parse_source(FIG4_CACHE)), "fig4")


@pytest.fixture
def fig4_compiled():
    return compile_netcl(FIG4_CACHE, 1, target="tna", program_name="fig4")


@pytest.fixture
def mini_compiled():
    return compile_netcl(MINI_KERNEL, 1, target="tna", program_name="mini")
