"""Value-range abstract interpretation: domain soundness + lint behavior.

The binding contract: :class:`IRInterpreter` is the concrete semantics,
and every abstract transfer must over-approximate it.  The width-4
sections check that *exhaustively* — every concrete operand pair, every
operator, every compare — against the real interpreter methods, so the
abstract domain can never silently drift from the execution semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.absint import (
    Interval,
    RangeAnalysis,
    binop_range,
    cast_range,
    icmp_range,
)
from repro.ir import GlobalState, IRInterpreter
from repro.ir.instructions import (
    BinOp,
    BinOpKind,
    Cast,
    CastKind,
    Constant,
    ICmp,
    ICmpPred,
)
from repro.ir.interp import InterpError
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.lang import analyze, lower_to_ir, parse_source

U4 = IntType(4)
W4 = 4


def _interp() -> IRInterpreter:
    return IRInterpreter(Module("t"), GlobalState())


def concrete_binop(kind: BinOpKind, a: int, b: int, ty: IntType = U4) -> int:
    """Ground truth: the interpreter's own BinOp evaluation."""
    return _interp()._binop(BinOp(kind, Constant(ty, a), Constant(ty, b)), {})


def concrete_icmp(pred: ICmpPred, a: int, b: int, ty: IntType = U4) -> int:
    return _interp()._icmp(ICmp(pred, Constant(ty, a), Constant(ty, b)), {})


def concrete_cast(kind: CastKind, v: int, src: IntType, dst: IntType) -> int:
    return _interp()._cast(Cast(kind, Constant(src, v), dst), {})


# -- Interval basics ---------------------------------------------------------------


class TestInterval:
    def test_make_normalizes_against_width(self):
        iv = Interval.make(8, -3, 999)
        assert (iv.lo, iv.hi) == (0, 255)

    def test_bits_prune_hi_and_vice_versa(self):
        # possibly-set bits 0b0011 cap hi at 3
        iv = Interval.make(8, 0, 200, bits=0b11)
        assert iv.hi == 3
        # hi=5 prunes bits above 0b111
        iv = Interval.make(8, 0, 5)
        assert iv.bits == 0b111

    def test_const_uses_unsigned_pattern(self):
        iv = Interval.const(IntType(8, signed=True), -1)
        assert (iv.lo, iv.hi) == (255, 255)

    def test_join_hull(self):
        a = Interval.make(8, 1, 3)
        b = Interval.make(8, 10, 12)
        j = a.join(b)
        assert (j.lo, j.hi) == (1, 12)

    def test_meet_disjoint_is_none(self):
        assert Interval.make(8, 0, 3).meet(Interval.make(8, 9, 12)) is None

    def test_signed_bounds_straddle(self):
        assert Interval.make(8, 0, 255).signed_bounds() == (-128, 127)
        assert Interval.make(8, 200, 250).signed_bounds() == (-56, -6)
        assert Interval.make(8, 0, 100).signed_bounds() == (0, 100)


# -- exhaustive width-4 soundness versus the interpreter ------------------------------

ALL_KINDS = list(BinOpKind)
ALL_PREDS = list(ICmpPred)


def _intervals_containing(v: int) -> list[Interval]:
    """A few interval shapes around one concrete value."""
    return [
        Interval.const(U4, v),
        Interval.make(W4, max(0, v - 1), min(15, v + 2)),
        Interval.top(W4),
    ]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_binop_abstract_contains_concrete_exhaustive(kind):
    """For every concrete (a, b) pair at width 4 and several abstractions
    of each operand, the interpreter result lies inside the abstract
    result interval."""
    for a in range(16):
        for b in range(16):
            try:
                concrete = concrete_binop(kind, a, b)
            except InterpError:
                continue  # division by zero: no result to contain
            for ia in _intervals_containing(a):
                for ib in _intervals_containing(b):
                    rng, _ = binop_range(kind, ia, ib, U4)
                    assert rng.contains(concrete), (
                        f"{kind.value}({a},{b})={concrete} not in {rng} "
                        f"(operands {ia}, {ib})"
                    )


@pytest.mark.parametrize("pred", ALL_PREDS, ids=lambda p: p.value)
def test_icmp_abstract_contains_concrete_exhaustive(pred):
    for a in range(16):
        for b in range(16):
            concrete = concrete_icmp(pred, a, b)
            for ia in _intervals_containing(a):
                for ib in _intervals_containing(b):
                    rng = icmp_range(pred, ia, ib)
                    assert rng.contains(concrete), (
                        f"icmp {pred.value}({a},{b})={concrete} not in {rng}"
                    )


@pytest.mark.parametrize("kind", list(CastKind), ids=lambda k: k.value)
def test_cast_abstract_contains_concrete_exhaustive(kind):
    if kind == CastKind.BITCAST:
        pairs = [(U4, IntType(4, signed=True))]
    elif kind == CastKind.TRUNC:
        pairs = [(IntType(8), U4)]
    else:
        pairs = [(U4, IntType(8)), (IntType(4, signed=True), IntType(8, signed=True))]
    for src, dst in pairs:
        for v in range(1 << src.width):
            concrete = concrete_cast(kind, v, src, dst)
            for iv in (
                Interval.const(IntType(src.width), v),
                Interval.make(src.width, max(0, v - 1), min(src.mask, v + 1)),
                Interval.top(src.width),
            ):
                rng = cast_range(kind, iv, dst)
                assert rng.contains(concrete), (
                    f"{kind.value} {src}->{dst} of {v} = {concrete} not in {rng}"
                )


def test_binop_random_interval_pairs_sound():
    """Random (non-degenerate) interval pairs at width 4: every concrete
    pair drawn from them must land inside the abstract result."""
    rng = random.Random(7)
    for _ in range(120):
        kind = rng.choice(ALL_KINDS)
        a_lo = rng.randrange(16)
        a_hi = rng.randrange(a_lo, 16)
        b_lo = rng.randrange(16)
        b_hi = rng.randrange(b_lo, 16)
        ia = Interval.make(W4, a_lo, a_hi)
        ib = Interval.make(W4, b_lo, b_hi)
        out, _ = binop_range(kind, ia, ib, U4)
        for a in range(a_lo, a_hi + 1):
            for b in range(b_lo, b_hi + 1):
                try:
                    concrete = concrete_binop(kind, a, b)
                except InterpError:
                    continue
                assert out.contains(concrete), (
                    f"{kind.value} [{a_lo},{a_hi}]x[{b_lo},{b_hi}]: "
                    f"{kind.value}({a},{b})={concrete} not in {out}"
                )


# -- pinned IRInterpreter edge-case semantics ------------------------------------------


class TestInterpEdgeSemantics:
    """The golden concrete reference the abstract domain is built on."""

    @pytest.mark.parametrize(
        "kind", [BinOpKind.UDIV, BinOpKind.SDIV, BinOpKind.UREM, BinOpKind.SREM]
    )
    def test_division_by_zero_traps(self, kind):
        with pytest.raises(InterpError):
            concrete_binop(kind, 5, 0, IntType(32))

    @pytest.mark.parametrize("width", [1, 4, 8, 16, 32, 64])
    def test_unsigned_wrap_at_each_width(self, width):
        ty = IntType(width)
        assert concrete_binop(BinOpKind.ADD, ty.mask, 1, ty) == 0
        assert concrete_binop(BinOpKind.SUB, 0, 1, ty) == ty.mask
        if width >= 2:
            # (2^w - 1)^2 mod 2^w == 1
            assert concrete_binop(BinOpKind.MUL, ty.mask, ty.mask, ty) == 1

    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_signed_wrap_at_each_width(self, width):
        ty = IntType(width, signed=True)
        int_min = 1 << (width - 1)  # bit pattern of INT_MIN
        int_max = int_min - 1  # bit pattern of INT_MAX
        # INT_MAX + 1 wraps to INT_MIN
        assert concrete_binop(BinOpKind.ADD, int_max, 1, ty) == int_min
        # INT_MIN - 1 wraps to INT_MAX
        assert concrete_binop(BinOpKind.SUB, int_min, 1, ty) == int_max

    @pytest.mark.parametrize("width", [4, 8, 32])
    def test_shift_past_width(self, width):
        ty = IntType(width)
        # shl/lshr by >= width yield 0; ashr clamps to width-1
        assert concrete_binop(BinOpKind.SHL, 3, width, ty) == 0
        assert concrete_binop(BinOpKind.SHL, 3, width + 5, ty) == 0
        assert concrete_binop(BinOpKind.LSHR, ty.mask, width, ty) == 0
        top_bit = 1 << (width - 1)
        signed_ty = IntType(width, signed=True)
        assert concrete_binop(BinOpKind.ASHR, top_bit, width + 9, signed_ty) == ty.mask
        assert concrete_binop(BinOpKind.ASHR, top_bit, width + 9, ty) == 1

    def test_saturating_ops_clamp(self):
        ty = IntType(8)
        assert concrete_binop(BinOpKind.SADDU, 200, 100, ty) == 255
        assert concrete_binop(BinOpKind.SSUBU, 100, 200, ty) == 0

    def test_signed_icmp_reinterprets_bit_pattern(self):
        # 0xFF compared signed is -1 even when the declared type is unsigned
        assert concrete_icmp(ICmpPred.SLT, 0xFF, 0, IntType(8)) == 1
        assert concrete_icmp(ICmpPred.ULT, 0xFF, 0, IntType(8)) == 0

    def test_sdiv_truncates_toward_zero(self):
        ty = IntType(8, signed=True)
        # -7 / 2 == -3 (trunc), bit pattern of -3 is 0xFD
        assert concrete_binop(BinOpKind.SDIV, ty.to_unsigned(-7), 2, ty) == 0xFD
        # -7 % 2 == -1 (sign follows dividend), pattern 0xFF
        assert concrete_binop(BinOpKind.SREM, ty.to_unsigned(-7), 2, ty) == 0xFF


# -- whole-function analysis -----------------------------------------------------------


def _lower(src: str):
    return lower_to_ir(analyze(parse_source(src)))


class TestRangeAnalysis:
    def test_branch_refinement_bounds_then_block(self):
        mod = _lower(
            """
            _kernel(1) void k(unsigned x, unsigned &out) {
              unsigned y = x & 0xff;
              if (y < 10) { out = y * 3; }
              else { out = 0; }
            }
            """
        )
        fn = mod.kernels()[0]
        ra = RangeAnalysis(fn).run()
        muls = [
            i
            for bb in fn.blocks
            for i in bb.instructions
            if isinstance(i, BinOp) and i.kind == BinOpKind.MUL
        ]
        assert len(muls) == 1
        rng = ra.result_range[id(muls[0])]
        assert (rng.lo, rng.hi) == (0, 27)

    def test_must_wrap_detected(self):
        mod = _lower(
            """
            _kernel(1) void k(uint8_t &y) {
              uint8_t a = 200;
              uint8_t b = 100;
              y = a + b;
            }
            """
        )
        fn = mod.kernels()[0]
        ra = RangeAnalysis(fn).run()
        assert BinOpKind.ADD in ra.must_wrap.values()

    def test_known_bits_prove_divisor_nonzero(self):
        mod = _lower(
            """
            _kernel(1) void k(unsigned x, unsigned d, unsigned &y) {
              y = x / (d | 1);
            }
            """
        )
        fn = mod.kernels()[0]
        ra = RangeAnalysis(fn).run()
        assert not ra.zero_divisors

    def test_unguarded_divisor_flagged(self):
        mod = _lower(
            """
            _kernel(1) void k(unsigned x, unsigned d, unsigned &y) {
              y = x / d;
            }
            """
        )
        fn = mod.kernels()[0]
        ra = RangeAnalysis(fn).run()
        assert len(ra.zero_divisors) == 1

    def test_branch_verdict_always_true(self):
        mod = _lower(
            """
            _kernel(1) void k(uint32_t &x, uint32_t &y) {
              if (x >= 0) { y = 1; }
            }
            """
        )
        fn = mod.kernels()[0]
        ra = RangeAnalysis(fn).run()
        assert True in ra.branch_verdicts.values()

    def test_analysis_is_read_only(self):
        mod = _lower(
            """
            _kernel(1) void k(unsigned a, unsigned b, unsigned &r) {
              unsigned t = a * b;
              if (t > 10) { r = t - 1; }
            }
            """
        )
        fn = mod.kernels()[0]
        before = mod.dump()
        RangeAnalysis(fn).run()
        assert mod.dump() == before
