"""Unit tests for ``repro.analysis``: the dataflow framework, the
diagnostics engine, and the ``ncc lint`` CLI (the acceptance scenario —
one program firing three distinct warning codes with locations, in both
text and JSON renderings)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    DiagnosticEngine,
    Direction,
    GenKillAnalysis,
    iter_postorder,
    iter_reverse_postorder,
    lint_source,
    run_lints,
)
from repro.analysis.diagnostics import CODES, Severity
from repro.core.cli import main
from repro.ir import IRBuilder
from repro.ir.instructions import Load, Store
from repro.ir.module import Function, FunctionKind
from repro.ir.types import IntType

U32 = IntType(32)


# ---------------------------------------------------------------------------
# dataflow framework
# ---------------------------------------------------------------------------


def _diamond():
    """entry(store a) -> {then(store b), else} -> merge."""
    fn = Function("d", FunctionKind.KERNEL, [], computation=1)
    b = IRBuilder(fn)
    entry = fn.new_block("entry")
    then_ = fn.new_block("then")
    else_ = fn.new_block("else")
    merge = fn.new_block("merge")

    b.position_at_end(entry)
    slot_a = b.alloca(U32, name="a")
    slot_b = b.alloca(U32, name="b")
    b.store(slot_a, IRBuilder.const(U32, 1))
    b.br(IRBuilder.true(), then_, else_)

    b.position_at_end(then_)
    b.store(slot_b, IRBuilder.const(U32, 2))
    b.jmp(merge)

    b.position_at_end(else_)
    b.jmp(merge)

    b.position_at_end(merge)
    b.load(slot_a, name="la")
    b.ret_value()
    return fn, slot_a, slot_b, merge


class _Stored(GenKillAnalysis):
    """Forward analysis of which slots have been stored to."""

    def __init__(self, fn, *, must):
        super().__init__(fn)
        self.may = not must

    def universe(self, fn):
        return frozenset(
            i.name for i in fn.instructions() if isinstance(i, Store)
        ) | frozenset(
            i.slot.name for i in fn.instructions() if isinstance(i, Store)
        )

    def inst_gen(self, inst):
        if isinstance(inst, Store):
            return frozenset([inst.slot.name])
        return frozenset()


class _LiveSlots(GenKillAnalysis):
    """Backward liveness over slot names."""

    direction = Direction.BACKWARD

    def inst_gen(self, inst):
        if isinstance(inst, Load):
            return frozenset([inst.slot.name])
        return frozenset()

    def inst_kill(self, inst):
        if isinstance(inst, Store):
            return frozenset([inst.slot.name])
        return frozenset()


class TestDataflow:
    def test_traversal_orders(self):
        fn, *_ = _diamond()
        post = [bb.name for bb in iter_postorder(fn)]
        rpo = [bb.name for bb in iter_reverse_postorder(fn)]
        assert post[-1] == "entry" and rpo[0] == "entry"
        assert set(post) == {"entry", "then", "else", "merge"}
        assert rpo.index("then") < rpo.index("merge")
        assert rpo.index("else") < rpo.index("merge")

    def test_forward_must_intersects_at_merge(self):
        fn, _, _, merge = _diamond()
        must = _Stored(fn, must=True).run()
        assert must.block_in[id(merge)] == frozenset(["a"])

    def test_forward_may_unions_at_merge(self):
        fn, _, _, merge = _diamond()
        may = _Stored(fn, must=False).run()
        assert may.block_in[id(merge)] == frozenset(["a", "b"])

    def test_backward_liveness(self):
        fn, *_ = _diamond()
        live = _LiveSlots(fn).run()
        entry = fn.entry
        # 'a' is loaded in merge and not re-stored on the way, so it is
        # live out of every block on the path; 'b' is never loaded.
        assert "a" in live.block_out[id(entry)]
        assert "b" not in live.block_out[id(entry)]

    def test_facts_before_walks_instructions(self):
        fn, slot_a, _, merge = _diamond()
        must = _Stored(fn, must=True).run()
        facts = must.facts_before(merge)
        load_idx = next(
            i for i, inst in enumerate(merge.instructions) if isinstance(inst, Load)
        )
        assert "a" in facts[load_idx]


# ---------------------------------------------------------------------------
# diagnostics engine
# ---------------------------------------------------------------------------


class TestDiagnosticEngine:
    def test_default_severity_comes_from_code_table(self):
        engine = DiagnosticEngine()
        assert engine.emit("NCL001", "w").severity == Severity.WARNING.value
        assert engine.emit("NCL102", "e").severity == Severity.ERROR.value
        assert engine.warnings and engine.errors

    def test_suppression_drops_the_code(self):
        engine = DiagnosticEngine(suppressed=["NCL004"])
        assert engine.emit("NCL004", "dead store") is None
        engine.emit("NCL001", "kept")
        assert engine.codes() == ["NCL001"]

    def test_exit_codes(self):
        ok = DiagnosticEngine()
        ok.emit("NCL001", "warning only")
        assert ok.exit_code == 0

        strict = DiagnosticEngine(werror=True)
        strict.emit("NCL001", "warning only")
        assert strict.exit_code == 1

        hard = DiagnosticEngine()
        hard.emit("NCL102", "error")
        assert hard.exit_code == 1

    def test_render_text_has_location_and_code(self):
        from repro.ir.instructions import SourceLoc

        engine = DiagnosticEngine(source_name="k.ncl")
        engine.emit("NCL005", "truncated", SourceLoc(7, 3))
        text = engine.render_text()
        assert "k.ncl:7:3: warning: truncated [NCL005]" in text
        assert "1 warning generated." in text

    def test_json_payload(self):
        from repro.ir.instructions import SourceLoc

        engine = DiagnosticEngine(source_name="k.ncl")
        engine.emit("NCL001", "maybe uninit", SourceLoc(4, 9))
        payload = json.loads(engine.to_json())
        assert payload["source"] == "k.ncl"
        assert payload["counts"] == {"errors": 0, "warnings": 1}
        [d] = payload["diagnostics"]
        assert (d["code"], d["line"], d["col"]) == ("NCL001", 4, 9)

    def test_every_code_has_severity_and_description(self):
        for code, (severity, desc) in CODES.items():
            assert code.startswith("NCL") and len(code) == 6
            assert isinstance(severity, Severity) and desc


# ---------------------------------------------------------------------------
# acceptance: one program, three codes, text + JSON, --Werror
# ---------------------------------------------------------------------------

ACCEPTANCE = """\
_net_ uint32_t Shared;
_net_ uint32_t R1;
_net_ uint32_t R2;
_net_ uint32_t R3;
_net_ uint32_t R4;
_net_ uint32_t R5;
_net_ uint32_t R6;
_net_ uint32_t R7;
_net_ uint32_t R8;
_net_ uint32_t R9;
_net_ uint32_t R10;
_net_ uint32_t R11;
_net_ uint32_t R12;
_net_ uint32_t R13;

_kernel(1) void writer(uint32_t &x) {
  uint32_t t;
  if (x == 0) {
    t = 1;
  }
  Shared = t;
  return ncl::pass();
}

_kernel(2) void chain(uint32_t &h) {
  uint32_t v = Shared;
  v = ncl::atomic_add_new(&R1, v);
  v = ncl::atomic_add_new(&R2, v);
  v = ncl::atomic_add_new(&R3, v);
  v = ncl::atomic_add_new(&R4, v);
  v = ncl::atomic_add_new(&R5, v);
  v = ncl::atomic_add_new(&R6, v);
  v = ncl::atomic_add_new(&R7, v);
  v = ncl::atomic_add_new(&R8, v);
  v = ncl::atomic_add_new(&R9, v);
  v = ncl::atomic_add_new(&R10, v);
  v = ncl::atomic_add_new(&R11, v);
  v = ncl::atomic_add_new(&R12, v);
  v = ncl::atomic_add_new(&R13, v);
  h = v;
  return ncl::pass();
}
"""

EXPECTED_CODES = {"NCL001", "NCL002", "NCL007"}


@pytest.fixture
def acceptance_file(tmp_path):
    p = tmp_path / "acceptance.ncl"
    p.write_text(ACCEPTANCE)
    return p


class TestLintCLI:
    def test_three_distinct_codes_with_locations(self, acceptance_file, capsys):
        rc = main(["lint", str(acceptance_file)])
        err = capsys.readouterr().err
        assert rc == 0  # warnings only
        for code in EXPECTED_CODES:
            assert code in err, f"missing {code} in:\n{err}"
        # every reported line carries file:line:col
        import re

        locs = re.findall(r"acceptance\.ncl:(\d+):(\d+): warning:", err)
        assert len(locs) >= 3
        assert all(int(line) > 0 and int(col) > 0 for line, col in locs)

    def test_json_rendering(self, acceptance_file, capsys):
        rc = main(["lint", str(acceptance_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        codes = {d["code"] for d in payload["diagnostics"]}
        assert EXPECTED_CODES <= codes
        for d in payload["diagnostics"]:
            assert d["line"] > 0 and d["col"] > 0

    def test_werror_fails_the_build(self, acceptance_file, capsys):
        assert main(["lint", str(acceptance_file), "--Werror"]) == 1

    def test_suppression_flag(self, acceptance_file, capsys):
        rc = main(["lint", str(acceptance_file), "-Wno-NCL007"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "NCL007" not in err
        assert "NCL001" in err and "NCL002" in err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.ncl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_mode_opt_in_lint(self, acceptance_file, tmp_path, capsys):
        out = tmp_path / "out.p4"
        rc = main(
            [
                str(acceptance_file),
                "--lint",
                "--target",
                "v1model",
                "--no-fit",
                "-o",
                str(out),
            ]
        )
        err = capsys.readouterr().err
        assert rc == 0 and out.exists()
        assert "NCL001" in err

    def test_compile_mode_werror(self, acceptance_file, tmp_path, capsys):
        rc = main(
            [
                str(acceptance_file),
                "--lint",
                "--Werror",
                "--target",
                "v1model",
                "--no-fit",
                "-o",
                str(tmp_path / "out.p4"),
            ]
        )
        assert rc == 1


class TestLintSource:
    def test_compile_error_becomes_ncl100(self):
        engine = DiagnosticEngine()
        lint_source("_kernel(1) void k(uint32_t &x) { x = ; }", engine=engine)
        assert engine.codes() == ["NCL100"]
        assert engine.exit_code == 1

    def test_run_lints_is_importable_and_pure(self):
        from repro.lang import analyze, lower_to_ir, parse_source

        mod = lower_to_ir(
            analyze(parse_source("_kernel(1) void k(uint32_t &x) { x = x + 1; }"))
        )
        before = mod.dump()
        engine = DiagnosticEngine()
        run_lints(mod, engine)
        assert mod.dump() == before
        assert engine.diagnostics == []


class TestDiagnosticDeterminism:
    """Diagnostics are part of the tool's observable output: two runs over
    the same source must byte-match in both renderers, regardless of emit
    order or set/dict iteration inside individual lints."""

    def _run_once(self) -> DiagnosticEngine:
        engine = DiagnosticEngine(source_name="acceptance.ncl")
        lint_source(ACCEPTANCE, engine=engine)
        return engine

    def test_two_runs_byte_match(self):
        a, b = self._run_once(), self._run_once()
        assert a.render_text() == b.render_text()
        assert a.to_json() == b.to_json()

    def test_output_sorted_by_location_then_code(self):
        from repro.ir.instructions import SourceLoc

        engine = DiagnosticEngine(source_name="k.ncl")
        # Emit deliberately out of order.
        engine.emit("NCL004", "later line", SourceLoc(9, 1))
        engine.emit("NCL001", "earlier line", SourceLoc(2, 5))
        engine.emit("NCL005", "same line, later col", SourceLoc(2, 9))
        payload = json.loads(engine.to_json())
        order = [(d["line"], d["col"], d["code"]) for d in payload["diagnostics"]]
        assert order == sorted(order)
        # text renderer follows the same order
        lines = engine.render_text().splitlines()
        assert "k.ncl:2:5" in lines[0] and "k.ncl:2:9" in lines[1]
        assert "k.ncl:9:1" in lines[2]

    def test_json_carries_schema_version(self):
        from repro.analysis import SCHEMA_VERSION

        payload = json.loads(self._run_once().to_json())
        assert payload["schema_version"] == SCHEMA_VERSION == 1
        # schema_version leads the payload so consumers can sniff cheaply
        assert next(iter(payload)) == "schema_version"
