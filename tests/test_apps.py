"""End-to-end application tests (§VII's four applications)."""

import pytest

from repro.apps import compile_app
from repro.apps.agg import build_agg_cluster, expected_sum
from repro.apps.cache import DEL_REQ, GET_REQ, PUT_REQ, VALUE_WORDS, build_cache_cluster
from repro.apps.calc import build_calc_cluster
from repro.apps.paxos import ACCEPTOR_DEVS, build_paxos_cluster


class TestCompileAll:
    @pytest.mark.parametrize("app,devs", [
        ("agg", [1]), ("cache", [1]), ("calc", [1]), ("paxos", [1, 2, 3, 4, 5]),
    ])
    def test_every_app_fits_tofino(self, app, devs):
        for dev in devs:
            cp = compile_app(app, dev)
            assert cp.report is not None
            assert cp.report.stages_used <= 12

    def test_paxos_placement_per_device(self):
        cp = compile_app("paxos", 3)
        names = [k.name for k in cp.kernels()]
        assert names == ["acceptor"]
        cp5 = compile_app("paxos", 5)
        assert [k.name for k in cp5.kernels()] == ["learner"]


class TestCalc:
    def test_all_operations(self):
        c = build_calc_cluster()
        cases = [("+", 40, 2, 42), ("-", 7, 9, (7 - 9) & 0xFFFFFFFF),
                 ("&", 0b1100, 0b1010, 0b1000), ("|", 1, 2, 3), ("^", 5, 5, 0)]
        for op, a, b, _ in cases:
            c.client.compute(op, a, b)
        c.network.sim.run()
        assert c.client.answers == [e for *_, e in cases]


class TestAgg:
    def test_multiworker_sums(self):
        for n in (2, 3, 6):
            cluster = build_agg_cluster(num_workers=n, tensor_elements=320)
            cluster.run(until_ms=100, require_done=True)
            exp = expected_sum(cluster)
            for w in cluster.workers:
                assert w.result == exp

    def test_exponent_is_max_across_workers(self):
        cluster = build_agg_cluster(num_workers=2, tensor_elements=64)
        cluster.workers[0].tensor = [1] * 64        # small exponents
        cluster.workers[1].tensor = [0xFFFF] * 64   # large exponents
        cluster.run(until_ms=50, require_done=True)
        assert all(e == 16 for e in cluster.workers[0].exponents)

    def test_loss_recovery_preserves_correctness(self):
        cluster = build_agg_cluster(
            num_workers=2, tensor_elements=320, loss_probability=0.1, seed=23
        )
        cluster.run(until_ms=1000, require_done=True)
        exp = expected_sum(cluster)
        for w in cluster.workers:
            assert w.result == exp
        assert sum(w.stats.retransmissions for w in cluster.workers) > 0

    def test_window_smaller_than_tensor(self):
        cluster = build_agg_cluster(num_workers=2, tensor_elements=2048, window=4)
        cluster.run(until_ms=200, require_done=True)
        exp = expected_sum(cluster)
        for w in cluster.workers:
            assert w.result == exp


class TestCache:
    @pytest.fixture
    def cluster(self):
        cl = build_cache_cluster()
        for k in range(1, 9):
            cl.server.store[k] = [k * 100 + i for i in range(VALUE_WORDS)]
        return cl

    def _roundtrip(self, cl, op, key, value=None):
        cl.client.query(op, key, value)
        cl.network.sim.run()
        return cl.client.completed[-1]

    def test_miss_then_install_then_hit(self, cluster):
        miss = self._roundtrip(cluster, GET_REQ, 3)
        assert not miss.served_by_cache and miss.value == cluster.server.store[3]
        cluster.controller.install_from_server(3)
        hit = self._roundtrip(cluster, GET_REQ, 3)
        assert hit.served_by_cache and hit.value == cluster.server.store[3]
        assert hit.latency_ns < miss.latency_ns

    def test_put_invalidates_and_updates_server(self, cluster):
        cluster.controller.install_from_server(4)
        new_value = [9] * VALUE_WORDS
        self._roundtrip(cluster, PUT_REQ, 4, new_value)
        assert cluster.server.store[4] == new_value
        after = self._roundtrip(cluster, GET_REQ, 4)
        assert not after.served_by_cache and after.value == new_value

    def test_del_removes_from_server(self, cluster):
        cluster.controller.install_from_server(5)
        self._roundtrip(cluster, DEL_REQ, 5)
        assert 5 not in cluster.server.store

    def test_hot_key_detection_and_bloom_suppression(self):
        cl = build_cache_cluster(hot_thresh=8)
        cl.server.store[77] = [1] * VALUE_WORDS
        for _ in range(30):
            cl.client.query(GET_REQ, 77)
            cl.network.sim.run()
        assert cl.server.hot_reports.count(77) == 1

    def test_controller_reacts_to_hot_report(self):
        cl = build_cache_cluster(hot_thresh=8)
        cl.server.store[88] = [8] * VALUE_WORDS
        cl.server.on_hot = lambda key: cl.controller.install_from_server(key)
        for _ in range(30):
            cl.client.query(GET_REQ, 88)
            cl.network.sim.run()
        final = cl.client.completed[-1]
        assert final.served_by_cache  # the cache absorbed the hot key

    def test_hit_counters_visible_to_controller(self, cluster):
        idx = cluster.controller.install_from_server(2)
        for _ in range(5):
            self._roundtrip(cluster, GET_REQ, 2)
        assert cluster.controller.conn.managed_read("HitCount", index=idx) == 5


class TestPaxos:
    def test_sequencing_and_delivery(self):
        px = build_paxos_cluster()
        for i in range(8):
            px.client.propose([i, 2 * i, 3 * i])
        px.network.sim.run()
        assert len(px.app.deliveries) == 8
        instances = [d.instance for d in px.app.deliveries]
        assert len(set(instances)) == 8  # unique consensus instances
        values = {tuple(d.value[:3]) for d in px.app.deliveries}
        assert values == {(i, 2 * i, 3 * i) for i in range(8)}

    def test_exactly_one_delivery_per_instance(self):
        px = build_paxos_cluster(majority=2)
        px.client.propose([42])
        px.network.sim.run()
        # 3 acceptors vote; majority (2nd vote) delivers exactly once
        assert len(px.app.deliveries) == 1

    def test_acceptor_loss_tolerated(self):
        px = build_paxos_cluster()
        # break one leader->acceptor link completely
        from repro.netsim import DEVICE

        key = frozenset((DEVICE(1), DEVICE(ACCEPTOR_DEVS[0])))
        px.network.links[key].loss_probability = 1.0
        px.client.propose([7])
        px.network.sim.run()
        assert len(px.app.deliveries) == 1  # 2 of 3 acceptors still a majority

    def test_no_delivery_without_majority(self):
        px = build_paxos_cluster()
        from repro.netsim import DEVICE

        for d in ACCEPTOR_DEVS[:2]:
            key = frozenset((DEVICE(1), DEVICE(d)))
            px.network.links[key].loss_probability = 1.0
        px.client.propose([7])
        px.network.sim.run()
        assert not px.app.deliveries

    def test_leader_state_persists(self):
        px = build_paxos_cluster()
        px.client.propose([1])
        px.network.sim.run()
        px.client.propose([2])
        px.network.sim.run()
        insts = [d.instance for d in px.app.deliveries]
        assert insts == [1, 2]
