"""Backends: P4 text emission, pipeline-spec lowering, codegen results."""

import pytest

from repro.backends import TnaBackend, V1ModelBackend
from repro.backends.base import NETCL_HEADER_BITS
from repro.core import compile_netcl
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import PassOptions, run_default_pipeline
from tests.conftest import FIG4_CACHE, MINI_KERNEL


def _prepared(src, target="tna", device=1):
    mod = lower_to_ir(analyze(parse_source(src)))
    run_default_pipeline(mod, PassOptions(target=target), device)
    return mod


class TestP4Text:
    @pytest.fixture(scope="class")
    def tna_source(self):
        mod = _prepared(FIG4_CACHE)
        return TnaBackend().compile(mod, 1, fit=False).p4_source

    def test_includes_and_dialect(self, tna_source):
        assert '#include <tna.p4>' in tna_source

    def test_netcl_shim_header_emitted(self, tna_source):
        assert "header netcl_t" in tna_source
        assert "bit<16> from_;" in tna_source

    def test_kernel_argument_header(self, tna_source):
        assert "header query_args_t" in tna_source
        for field in ("op", "k", "v", "hit", "hot"):
            assert field in tna_source

    def test_registers_and_register_actions(self, tna_source):
        assert "Register<bit<32>, bit<32>>" in tna_source
        assert "RegisterAction<" in tna_source
        assert "|+|" in tna_source  # saturated add microprogram

    def test_lookup_table_with_entries(self, tna_source):
        assert "table mat_cache" in tna_source
        assert "const entries" in tna_source

    def test_hash_externs(self, tna_source):
        assert "HashAlgorithm_t.CRC16" in tna_source
        assert "HashAlgorithm_t.XOR16" in tna_source

    def test_dispatch_on_computation_id(self, tna_source):
        assert "hdr.netcl.comp == 1" in tna_source

    def test_action_codes_written(self, tna_source):
        assert "hdr.netcl.act" in tna_source and "// reflect" in tna_source

    def test_v1model_dialect(self):
        mod = _prepared(FIG4_CACHE, target="v1model")
        src = V1ModelBackend().compile(mod, 1, fit=False).p4_source
        assert '#include <v1model.p4>' in src
        assert "register<bit<32>>" in src
        assert ".read(" in src and ".write(" in src


class TestPipelineSpecLowering:
    def test_kernel_tables_present(self):
        mod = _prepared(FIG4_CACHE)
        result = TnaBackend().compile(mod, 1, fit=False)
        names = [t.name for t in result.spec.tables]
        assert any("mat_cache" in n for n in names)
        assert any("reg_cms" in n for n in names)
        assert "ncl_dispatch" in names and "smac" in names  # base program

    def test_base_program_optional(self):
        mod = _prepared(FIG4_CACHE)
        bare = TnaBackend().compile(mod, 1, fit=False, include_base_program=False)
        assert all(t.name != "smac" for t in bare.spec.tables)

    def test_kernel_stats_collected(self, fig4_compiled):
        stats = fig4_compiled.codegen.kernel_stats
        assert "query" in stats
        s = stats["query"]
        assert s.header_bits == 8 + 32 + 32 + 8 + 32
        assert s.gateways >= 1 and s.actions >= 1

    def test_header_fields_include_netcl_shim(self, fig4_compiled):
        from repro.backends.base import NETCL_HEADER_FIELDS

        fields = fig4_compiled.codegen.spec.header_fields
        # the shim's individual fields are all carried on the PHV
        for w in NETCL_HEADER_FIELDS:
            assert w in fields
        assert sum(NETCL_HEADER_FIELDS) == NETCL_HEADER_BITS


class TestDriver:
    def test_fig4_compiles_both_targets(self):
        for target in ("tna", "v1model"):
            cp = compile_netcl(FIG4_CACHE, 1, target=target)
            assert cp.report is not None and cp.p4_source

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            compile_netcl(MINI_KERNEL, 1, target="npu")

    def test_defines_injection(self):
        src = "#ifndef N\n#define N 4\n#endif\n_net_ unsigned m[N];\n_kernel(1) void k(unsigned i, unsigned &r) { r = m[i & (N-1)]; }"
        cp = compile_netcl(src, 1, defines={"N": 16})
        assert cp.module.globals["m"].capacity == 16

    def test_timings_split(self, fig4_compiled):
        t = fig4_compiled.timings
        assert t.ncc_seconds > 0 and t.fitter_seconds > 0
        assert abs(t.total_seconds - (t.ncc_seconds + t.fitter_seconds)) < 1e-9

    def test_fit_false_skips_fitter(self):
        cp = compile_netcl(MINI_KERNEL, 1, fit=False)
        assert cp.report is None and cp.timings.fitter_seconds == 0

    def test_kernel_for_computation(self, fig4_compiled):
        assert fig4_compiled.codegen.kernel_for_computation(1) is not None
        assert fig4_compiled.codegen.kernel_for_computation(9) is None


class TestCli:
    def test_cli_compiles_to_file(self, tmp_path):
        from repro.core.cli import main

        src = tmp_path / "prog.ncl"
        src.write_text(MINI_KERNEL)
        out = tmp_path / "prog.p4"
        rc = main([str(src), "--device", "1", "-o", str(out), "--report"])
        assert rc == 0
        assert "RegisterAction" in out.read_text()

    def test_cli_reports_compile_errors(self, tmp_path, capsys):
        from repro.core.cli import main

        src = tmp_path / "bad.ncl"
        src.write_text("_kernel(1) int k() { return 1; }")
        rc = main([str(src)])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_cli_flags(self, tmp_path):
        from repro.core.cli import main

        src = tmp_path / "prog.ncl"
        src.write_text(MINI_KERNEL)
        rc = main([str(src), "--no-speculation", "--no-duplication", "--no-fit",
                   "-o", str(tmp_path / "o.p4")])
        assert rc == 0

    def test_cli_defines(self, tmp_path):
        from repro.core.cli import main

        src = tmp_path / "prog.ncl"
        src.write_text("_net_ unsigned m[N];\n_kernel(1) void k(unsigned i, unsigned &r) { r = m[i & (N-1)]; }")
        rc = main([str(src), "-D", "N=8", "-o", str(tmp_path / "o.p4")])
        assert rc == 0
