"""The ncl:: builtin registry: atomic name grammar, actions, pure fns."""

import pytest

from repro.ir.instructions import ActionKind, AtomicOp
from repro.lang import builtins as bi


class TestAtomicNameGrammar:
    @pytest.mark.parametrize(
        "name,op,cond,sat,new,implicit",
        [
            ("atomic_add", AtomicOp.ADD, False, False, False, None),
            ("atomic_add_new", AtomicOp.ADD, False, False, True, None),
            ("atomic_sadd_new", AtomicOp.ADD, False, True, True, None),
            ("atomic_cond_add_new", AtomicOp.ADD, True, False, True, None),
            ("atomic_cond_sadd_new", AtomicOp.ADD, True, True, True, None),
            ("atomic_inc", AtomicOp.ADD, False, False, False, 1),
            ("atomic_cond_dec_new", AtomicOp.SUB, True, False, True, 1),
            ("atomic_or", AtomicOp.OR, False, False, False, None),
            ("atomic_and", AtomicOp.AND, False, False, False, None),
            ("atomic_xor_new", AtomicOp.XOR, False, False, True, None),
            ("atomic_max_new", AtomicOp.MAX, False, False, True, None),
            ("atomic_min", AtomicOp.MIN, False, False, False, None),
            ("atomic_exch", AtomicOp.EXCH, False, False, False, None),
            ("atomic_cas", AtomicOp.CAS, False, False, False, None),
            ("atomic_read", AtomicOp.READ, False, False, False, None),
            ("atomic_write", AtomicOp.WRITE, False, False, False, None),
        ],
    )
    def test_decodes(self, name, op, cond, sat, new, implicit):
        spec = bi.parse_atomic(name)
        assert spec is not None, name
        assert spec.op == op
        assert spec.conditional == cond
        assert spec.saturating == sat
        assert spec.return_new == new
        assert spec.implicit_operand == implicit

    @pytest.mark.parametrize(
        "bad",
        ["atomic_frob", "atomic_sor", "atomic_smax", "atomicadd", "atomic_add_old",
         "atomic_cond", "add_new"],
    )
    def test_rejects_nonsense(self, bad):
        assert bi.parse_atomic(bad) is None

    def test_operand_counts(self):
        assert bi.parse_atomic("atomic_add").operand_count == 1
        assert bi.parse_atomic("atomic_inc").operand_count == 0
        assert bi.parse_atomic("atomic_cas").operand_count == 2
        assert bi.parse_atomic("atomic_read").operand_count == 0


class TestRegistries:
    def test_all_table2_actions_present(self):
        expected = {
            "drop": ActionKind.DROP,
            "send_to_host": ActionKind.SEND_TO_HOST,
            "send_to_device": ActionKind.SEND_TO_DEVICE,
            "multicast": ActionKind.MULTICAST,
            "repeat": ActionKind.REPEAT,
            "reflect": ActionKind.REFLECT,
            "reflect_long": ActionKind.REFLECT_LONG,
            "pass": ActionKind.PASS,
        }
        assert bi.ACTIONS == expected

    def test_target_taking_actions(self):
        takes = {k for k, v in bi.ACTIONS.items() if v.takes_target}
        assert takes == {"send_to_host", "send_to_device", "multicast"}

    def test_pure_builtins_cover_table1(self):
        for name in ("crc16", "crc32", "xor16", "sadd", "ssub", "bit_chk",
                     "rand", "tna.crc64", "v1.csum16r", "min", "max"):
            assert name in bi.PURE_BUILTINS, name

    def test_host_only_names_flagged(self):
        for name in ("managed_read", "managed_write", "pack", "unpack"):
            assert name in bi.HOST_ONLY

    def test_is_builtin_dispatch(self):
        assert bi.is_builtin("lookup")
        assert bi.is_builtin("atomic_cond_sadd_new")
        assert bi.is_builtin("reflect")
        assert not bi.is_builtin("managed_read")
        assert not bi.is_builtin("frobnicate")
