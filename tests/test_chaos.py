"""repro.chaos: fault plans, the injection engine, scheduled failures,
the chaos CLI, and the end-to-end fault-recovery scenarios."""

import json

import pytest

from repro.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosPlan,
    LinkFaults,
    apply_faults,
    default_chaos_plan,
    link_name,
    parse_node,
    run_agg_chaos,
    run_cache_chaos,
)
from repro.chaos.cli import main as chaos_main
from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network
from repro.runtime import KernelSpec, Message, NetCLDevice

ECHO = "_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; return ncl::reflect(); }"


def _echo_net(seed=3):
    cp = compile_netcl(ECHO, 1)
    dev = NetCLDevice(1, cp.module, cp.kernels())
    net = Network(seed=seed, metrics=dev.metrics)
    net.add_switch(dev, processing_ns=200)
    host = net.add_host(1)
    net.link(HOST(1), DEVICE(1), Link(latency_ns=500))
    return net, host, KernelSpec.from_kernel(cp.kernels()[0])


def _send(net, host, spec, n=1):
    for i in range(n):
        msg = Message(src=1, dst=1, comp=1, to=1)
        host.send_message(msg, spec, [i, 0], delay_ns=i * 10_000)


class TestPlan:
    def test_parse_node(self):
        assert parse_node("h3") == HOST(3)
        assert parse_node("d12") == DEVICE(12)
        with pytest.raises(ValueError):
            parse_node("x1")
        with pytest.raises(ValueError):
            parse_node("hx")

    def test_link_name_is_order_independent(self):
        assert link_name(HOST(2), DEVICE(1)) == link_name(DEVICE(1), HOST(2)) == "d1-h2"

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_ns=0, kind="explode")
        with pytest.raises(ValueError):
            ChaosEvent(at_ns=0, kind="crash")  # missing node
        with pytest.raises(ValueError):
            ChaosEvent(at_ns=0, kind="link_down", a="h1")  # missing b

    def test_json_roundtrip(self):
        plan = ChaosPlan(
            seed=9,
            default_link=LinkFaults(loss=0.1, jitter_ns=500),
            links={"d1-h1": LinkFaults(duplicate=0.2, reorder=0.3)},
            events=[
                ChaosEvent(at_ns=1000, kind="crash", node="d1"),
                ChaosEvent(at_ns=2000, kind="link_down", a="h1", b="d1"),
            ],
        )
        back = ChaosPlan.from_json(plan.to_json())
        assert back.to_dict() == plan.to_dict()
        assert back.faults_for(HOST(1), DEVICE(1)).duplicate == 0.2
        assert back.faults_for(HOST(5), DEVICE(1)).loss == 0.1  # default

    def test_faults_for_without_default(self):
        plan = ChaosPlan(links={"d1-h1": LinkFaults(loss=1.0)})
        assert plan.faults_for(HOST(2), DEVICE(1)) is None

    def test_default_chaos_plan_roundtrip(self):
        plan = default_chaos_plan(7)
        back = ChaosPlan.from_json(plan.to_json())
        assert back.to_dict() == plan.to_dict()
        assert any(e.kind == "crash" for e in back.events)


class TestController:
    def test_total_loss_blackholes_the_link(self):
        net, host, spec = _echo_net()
        apply_faults(LinkFaults(loss=1.0), net)
        _send(net, host, spec, n=5)
        net.sim.run(until_ns=5_000_000)
        assert not host.received
        assert net.metrics.counter("chaos.lost").value == 5
        assert net.metrics.counter("chaos.lost.d1-h1").value == 5
        assert net.packets_lost == 5

    def test_duplication_delivers_twice(self):
        net, host, spec = _echo_net()
        # Duplicate only on the downlink so the request itself stays single.
        plan = ChaosPlan(seed=net.seed)
        plan.links[link_name(DEVICE(1), HOST(1))] = LinkFaults(duplicate=1.0)
        # Faults apply per transmission over the link regardless of
        # direction; send one request and count deliveries.
        ChaosController(net, plan).arm()
        _send(net, host, spec, n=1)
        net.sim.run(until_ns=5_000_000)
        assert len(host.received) >= 2
        assert net.metrics.total("chaos.duplicated") >= 1

    def test_jitter_and_reorder_are_counted(self):
        net, host, spec = _echo_net()
        apply_faults(LinkFaults(jitter_ns=2_000, reorder=1.0, reorder_delay_ns=5_000), net)
        _send(net, host, spec, n=3)
        net.sim.run(until_ns=5_000_000)
        assert len(host.received) == 3  # delayed, not lost
        assert net.metrics.total("chaos.reordered") >= 3
        assert net.metrics.total("chaos.jitter_ns") > 0

    def test_corruption_flips_data_bits(self):
        net, host, spec = _echo_net()
        plan = ChaosPlan(seed=net.seed)
        plan.links[link_name(HOST(1), DEVICE(1))] = LinkFaults(corrupt=1.0)
        ChaosController(net, plan).arm()
        _send(net, host, spec, n=1)
        net.sim.run(until_ns=5_000_000)
        assert net.metrics.total("chaos.corrupted") >= 1

    def test_scheduled_crash_and_restart(self):
        net, host, spec = _echo_net()
        plan = ChaosPlan(
            events=[
                ChaosEvent(at_ns=100_000, kind="crash", node="d1"),
                ChaosEvent(at_ns=200_000, kind="restart", node="d1"),
            ]
        )
        ChaosController(net, plan).arm()
        net.sim.run(until_ns=150_000)
        assert not net.is_up(DEVICE(1))
        net.sim.run(until_ns=300_000)
        assert net.is_up(DEVICE(1))
        assert net.metrics.total("chaos.events_fired") == 2
        assert net.metrics.total("net.crashes") == 1
        assert net.metrics.total("net.restarts") == 1

    def test_link_flap_events(self):
        net, host, spec = _echo_net()
        plan = ChaosPlan(
            events=[
                ChaosEvent(at_ns=1_000, kind="link_down", a="h1", b="d1"),
                ChaosEvent(at_ns=50_000, kind="link_up", a="h1", b="d1"),
            ]
        )
        ChaosController(net, plan).arm()
        _send(net, host, spec, n=1)  # tx overhead lands it after the cut
        net.sim.run(until_ns=55_000)
        assert not host.received  # no route while flapped down
        _send(net, host, spec, n=1)  # sent after the link comes back
        net.sim.run(until_ns=5_000_000)
        assert len(host.received) == 1

    def test_disarm_removes_hook(self):
        net, host, spec = _echo_net()
        ctl = apply_faults(LinkFaults(loss=1.0), net)
        ctl.disarm()
        assert net.fault_injector is None
        _send(net, host, spec, n=1)
        net.sim.run(until_ns=5_000_000)
        assert len(host.received) == 1

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            net, host, spec = _echo_net(seed=seed)
            apply_faults(LinkFaults(loss=0.3, duplicate=0.3, jitter_ns=1_000), net)
            _send(net, host, spec, n=20)
            net.sim.run(until_ns=20_000_000)
            return (
                len(host.received),
                net.metrics.total("chaos.lost"),
                net.metrics.total("chaos.duplicated"),
                net.metrics.total("chaos.jitter_ns"),
            )

        assert run(11) == run(11)
        assert run(11) != run(12)  # the seed actually steers the faults


class TestScenarios:
    def test_cache_survives_default_chaos(self):
        r = run_cache_chaos(seed=7)
        assert r.ok, r.errors
        assert r.failed_over
        assert r.completed == r.expected
        assert r.counters["chaos_lost"] > 0
        assert r.counters["failovers"] == 1

    def test_agg_survives_default_chaos(self):
        r = run_agg_chaos(seed=7)
        assert r.ok, r.errors
        assert r.failed_over
        assert r.counters["chaos_lost"] > 0
        assert r.counters["device_dup_drops"] >= 0

    def test_runs_are_bit_identical_under_fixed_seed(self):
        a = run_cache_chaos(seed=11)
        b = run_cache_chaos(seed=11)
        assert a.ok and b.ok
        assert a.digest == b.digest
        c = run_cache_chaos(seed=12)
        assert c.digest != a.digest

    def test_agg_determinism(self):
        a = run_agg_chaos(seed=11)
        b = run_agg_chaos(seed=11)
        assert a.ok and b.ok
        assert a.digest == b.digest

    def test_result_dict_is_json_serializable(self):
        r = run_cache_chaos(seed=7)
        d = json.loads(json.dumps(r.to_dict()))
        assert d["app"] == "cache" and d["ok"] and d["seed"] == 7
        assert d["plan"]["seed"] == 7


class TestCli:
    def test_cache_json_run(self, capsys):
        assert chaos_main(["--app", "cache", "--seed", "7", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] and out["failed_over"]

    def test_dump_plan(self, capsys):
        assert chaos_main(["--app", "agg", "--seed", "5", "--dump-plan"]) == 0
        plan = ChaosPlan.from_json(capsys.readouterr().out)
        assert plan.seed == 5

    def test_plan_file_roundtrip(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(default_chaos_plan(7, loss=0.02).to_json())
        assert chaos_main(["--app", "cache", "--seed", "7", "--plan", str(plan_file)]) == 0
        assert "ok" in capsys.readouterr().out.lower()

    def test_no_crash_flag_skips_failover(self, capsys):
        assert chaos_main(["--app", "cache", "--seed", "7", "--no-crash", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] and not out["failed_over"]
