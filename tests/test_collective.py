"""repro.collective — hierarchical in-network collectives, end to end."""

from __future__ import annotations

import math
import random

import pytest

from repro.collective import (
    CollectiveCluster,
    StallError,
    build_collective_cluster,
    compile_role,
    contribution,
    default_collective_plan,
    leaf_device,
    run_collective_chaos,
    run_host_ring,
    shard_range,
    submit_collective_tenant,
)
from repro.collective.tree import ROOT_DEVICE
from repro.deploy import PhysicalFabric
from repro.netsim import DEVICE, HOST
from repro.service import INCService


def _tensors(num_workers: int, elements: int, seed: int = 3) -> list[list[float]]:
    rng = random.Random(seed)
    return [
        [rng.uniform(-50.0, 50.0) for _ in range(elements)]
        for _ in range(num_workers)
    ]


def _exact_sum(tensors: list[list[float]]) -> list[float]:
    return [math.fsum(t[i] for t in tensors) for i in range(len(tensors[0]))]


def _check_allreduce(cluster: CollectiveCluster, job, tensors) -> None:
    exact = _exact_sum(tensors)
    bound = job.max_error_bound()
    for rank, res in job.results.items():
        assert res == job.results[0], f"rank {rank} diverged bit-wise"
        for a, b in zip(res, exact):
            assert abs(a - b) <= bound


class TestCompile:
    def test_leaf_and_root_roles_fit_tofino(self):
        leaf = compile_role(leaf_device(0), rack=0)
        root = compile_role(ROOT_DEVICE)
        assert leaf.report is not None and leaf.report.stages_used <= 12
        assert root.report is not None and root.report.stages_used <= 12
        # A leaf hosts both computations; the root likewise.
        assert {k.computation for k in leaf.kernels()} == {1, 2}
        assert {k.computation for k in root.kernels()} == {1, 2}
        assert {k.name for k in leaf.kernels()} == {"reduce_leaf", "expmax_leaf"}
        assert {k.name for k in root.kernels()} == {"reduce_root", "expmax_root"}


class TestShard:
    def test_shards_partition_the_tensor(self):
        for n, e in [(4, 17), (8, 2048), (3, 2)]:
            spans = [shard_range(e, n, r) for r in range(n)]
            assert spans[0][0] == 0 and spans[-1][1] == e
            for (_, hi), (lo, _) in zip(spans, spans[1:]):
                assert hi == lo

    def test_contribution_shapes(self):
        t = [1.0, 2.0, 3.0, 4.0]
        assert contribution("allreduce", t, 1, 2, 4) == t
        ag = contribution("allgather", [9.0, 9.0], 1, 2, 4)
        assert ag == [0.0, 0.0, 9.0, 9.0]
        assert contribution("broadcast", t, 0, 2, 4) == t
        assert contribution("broadcast", [], 1, 2, 4) == [0.0] * 4
        with pytest.raises(ValueError, match="unknown collective op"):
            contribution("scan", t, 0, 2, 4)


class TestCollectiveOps:
    def test_allreduce_two_racks(self):
        cluster = build_collective_cluster(2, 2)
        tensors = _tensors(4, 256)
        job = cluster.submit("allreduce", tensors)
        cluster.run(until_ms=100, require_done=True)
        _check_allreduce(cluster, job, tensors)

    def test_reduce_scatter_shards(self):
        cluster = build_collective_cluster(2, 2)
        tensors = _tensors(4, 200)
        job = cluster.submit("reduce_scatter", tensors)
        cluster.run(until_ms=100, require_done=True)
        exact = _exact_sum(tensors)
        bound = job.max_error_bound()
        for rank in range(4):
            lo, hi = shard_range(200, 4, rank)
            got = job.results[rank]
            assert len(got) == hi - lo
            for a, b in zip(got, exact[lo:hi]):
                assert abs(a - b) <= bound

    def test_allgather_concatenates(self):
        cluster = build_collective_cluster(2, 2)
        rng = random.Random(11)
        shards = [
            [rng.uniform(-5, 5) for _ in range(hi - lo)]
            for lo, hi in (shard_range(130, 4, r) for r in range(4))
        ]
        job = cluster.submit("allgather", shards)
        cluster.run(until_ms=100, require_done=True)
        concat = [x for s in shards for x in s]
        bound = job.max_error_bound()
        for rank in range(4):
            assert job.results[rank] == job.results[0]
            for a, b in zip(job.results[rank], concat):
                assert abs(a - b) <= bound

    def test_broadcast_from_nonzero_root(self):
        cluster = build_collective_cluster(2, 2)
        rng = random.Random(5)
        tensor = [rng.uniform(-2, 2) for _ in range(64)]
        tensors = [[], [], tensor, []]
        job = cluster.submit("broadcast", tensors, root=2)
        cluster.run(until_ms=100, require_done=True)
        bound = job.max_error_bound()
        for rank in range(4):
            for a, b in zip(job.results[rank], tensor):
                assert abs(a - b) <= bound

    def test_exponents_negotiated_to_global_max(self):
        cluster = build_collective_cluster(2, 2, exp_group=1)
        tensors = [[1e-3] * 32, [1e-3] * 32, [1e-3] * 32, [1024.5] * 32]
        job = cluster.submit("allreduce", tensors)
        cluster.run(until_ms=100, require_done=True)
        # 1024.5 -> frexp exponent 11; all chunks share the max.
        assert all(e == 11 + 128 for e in job.exponents)

    def test_back_to_back_jobs_reset_tree_state(self):
        cluster = build_collective_cluster(2, 2)
        t1 = _tensors(4, 128, seed=1)
        job1 = cluster.submit("allreduce", t1)
        cluster.run(until_ms=100, require_done=True)
        _check_allreduce(cluster, job1, t1)
        t2 = _tensors(4, 96, seed=2)
        job2 = cluster.submit("allreduce", t2)
        cluster.run(until_ms=100, require_done=True)
        _check_allreduce(cluster, job2, t2)
        assert cluster.jobs_run == 2

    def test_loss_recovery(self):
        cluster = build_collective_cluster(2, 2, loss=0.03, seed=17)
        tensors = _tensors(4, 256)
        job = cluster.submit("allreduce", tensors)
        cluster.run(until_ms=500, require_done=True)
        _check_allreduce(cluster, job, tensors)
        assert sum(w.retransmissions for w in cluster.workers) > 0

    def test_timeouts_are_rank_staggered(self):
        cluster = build_collective_cluster(2, 2, timeout_ns=100_000,
                                           stagger_ns=10_000)
        cluster.submit("allreduce", _tensors(4, 16))
        timeouts = [w.staggered_timeout_ns for w in cluster.workers]
        assert timeouts == [100_000, 110_000, 120_000, 130_000]
        assert [w.reduce.timeout_ns for w in cluster.workers] == timeouts


class TestStallDiagnostics:
    def test_stall_report_names_ranks_and_chunks(self):
        cluster = build_collective_cluster(2, 2)
        cluster.submit("allreduce", _tensors(4, 64))
        # Kill rack 0's only ToR: both of its workers stall, and with the
        # rack partial missing the other rack can never finish either.
        cluster.network.crash_switch(leaf_device(0))
        cluster.run(until_ms=5)
        with pytest.raises(StallError) as ei:
            cluster.require_done()
        msg = str(ei.value)
        assert "rank 0" in msg and "chunk" in msg
        report = cluster.stall_report()
        assert report and any("rank 0" in line for line in report)

    def test_agg_cluster_stall_diagnostics(self):
        from repro.apps.agg import AGG_DEVICE, build_agg_cluster

        cluster = build_agg_cluster(num_workers=2, tensor_elements=64)
        cluster.network.crash_switch(AGG_DEVICE)
        with pytest.raises(StallError) as ei:
            cluster.run(until_ms=5, require_done=True)
        msg = str(ei.value)
        assert "worker 0" in msg and "worker 1" in msg and "chunk" in msg


class TestHostRingBaseline:
    def test_ring_matches_fp32_reference(self):
        tensors = _tensors(4, 64, seed=9)
        res = run_host_ring(2, 2, tensors)
        exact = _exact_sum(tensors)
        for rank in range(4):
            assert res.results[rank] == res.results[0]
            for a, b in zip(res.results[rank], exact):
                assert abs(a - b) <= 1e-3
        assert res.link_bytes > 0 and res.acks_sent >= res.packets_sent

    def test_ring_survives_loss_via_retransmission(self):
        tensors = _tensors(4, 64, seed=9)
        plan = default_collective_plan(21, duplicate=0.0, reorder=0.0,
                                       jitter_ns=0, crash_at_ns=None)
        res = run_host_ring(2, 2, tensors, seed=21, plan=plan)
        assert res.retransmissions > 0
        exact = _exact_sum(tensors)
        for rank in range(4):
            for a, b in zip(res.results[rank], exact):
                assert abs(a - b) <= 1e-3


class TestChaosAcceptance:
    def test_flagship_allreduce_under_chaos(self):
        """The acceptance run: 2 racks, 8 workers, 5% loss/dup/reorder +
        a mid-run ToR crash; bit-identical per seed; in-network traffic
        beats the host ring under the same link faults."""
        r = run_collective_chaos(7, tensor_elements=1024)
        assert r.ok, r.errors
        assert r.finished == 8 and r.failed_over
        assert r.max_abs_error <= r.error_bound
        assert r.innetwork_link_bytes < r.ring_link_bytes
        assert r.counters["protocol_retransmissions"] > 0
        assert r.counters["hops_saved"] > 0
        again = run_collective_chaos(7, tensor_elements=1024)
        assert again.digest == r.digest

    def test_telemetry_counters_exported(self):
        r = run_collective_chaos(13, tensor_elements=512)
        assert r.ok, r.errors
        m = r.metrics
        assert m["collective.chunks_completed"] == 8 * 512 / 16
        assert m["collective.elements_reduced"] == 8 * 512
        assert m["collective.innetwork_link_bytes"] == r.innetwork_link_bytes
        assert m["collective.host_ring_link_bytes"] == r.ring_link_bytes

    def test_seeds_decorrelate(self):
        a = run_collective_chaos(7, tensor_elements=256)
        b = run_collective_chaos(8, tensor_elements=256)
        assert a.digest != b.digest


class TestTenantMode:
    def _service(self, spare: bool = False) -> INCService:
        fab = PhysicalFabric()
        for sid in (1, 2, 3) + ((4,) if spare else ()):
            fab.add_switch(sid, free_stages=12)
        fab.link(DEVICE(2), DEVICE(1))
        fab.link(DEVICE(3), DEVICE(1))
        if spare:
            fab.link(DEVICE(4), DEVICE(1))
        for h in (1, 2, 3, 4):
            fab.add_host(h)
        fab.link(HOST(1), DEVICE(2))
        fab.link(HOST(2), DEVICE(2))
        fab.link(HOST(3), DEVICE(3))
        fab.link(HOST(4), DEVICE(3))
        if spare:
            fab.link(HOST(1), DEVICE(4))
            fab.link(HOST(2), DEVICE(4))
        return INCService(fab, seed=5).start()

    def test_collective_as_tenant(self):
        svc = self._service()
        ct = submit_collective_tenant(svc, "train", [1, 2, 3, 4], num_racks=2)
        assert ct.tenant.placement.keys() == {1, 2, 3}
        tensors = _tensors(4, 128)
        job = ct.submit_job("allreduce", tensors)
        ct.run(until_ms=100, require_done=True)
        exact = _exact_sum(tensors)
        bound = job.max_error_bound()
        for rank in range(4):
            assert job.results[rank] == job.results[0]
            for a, b in zip(job.results[rank], exact):
                assert abs(a - b) <= bound
        m = svc.network.metrics
        assert m.value("tenant.train.packets") > 0

    def test_job_survives_live_migration(self):
        svc = self._service(spare=True)
        ct = submit_collective_tenant(svc, "train", [1, 2, 3, 4], num_racks=2)
        tensors = _tensors(4, 2048)
        job = ct.submit_job("allreduce", tensors)
        ct.run(until_ms=0.05)  # mid-flight
        assert not ct.all_done
        svc.crash_switch(ct.tenant.placement[2])
        ct.run(until_ms=300, require_done=True)
        assert svc.network.metrics.value("service.migrations") == 1
        exact = _exact_sum(tensors)
        bound = job.max_error_bound()
        for rank in range(4):
            for a, b in zip(job.results[rank], exact):
                assert abs(a - b) <= bound
