"""The deployment planner (Fig. 3 step 3 / §VIII future work)."""

import pytest

from repro.apps import compile_app
from repro.core import compile_netcl
from repro.deploy import (
    AbstractTopology,
    DeploymentError,
    DeploymentPlanner,
    PhysicalFabric,
)
from repro.netsim import DEVICE, HOST
from repro.runtime import KernelSpec, Message
from repro.runtime.message import unpack

ECHO = "_kernel(1) void k(unsigned x, unsigned &y) { y = x + %d; return ncl::reflect(); }"


def _fabric(num_switches=4, hosts=(1, 2)):
    fab = PhysicalFabric()
    for sid in range(1, num_switches + 1):
        fab.add_switch(sid)
        if sid > 1:
            fab.link(DEVICE(sid - 1), DEVICE(sid))
    for h in hosts:
        fab.add_host(h)
        fab.link(HOST(h), DEVICE(1 if h == 1 else num_switches))
    return fab


class TestPlanning:
    def test_assigns_each_device_to_distinct_switch(self):
        topo = AbstractTopology()
        for dev_id in (1, 2):
            topo.add_device(dev_id, compile_netcl(ECHO % dev_id, dev_id))
        topo.attach_host(1, 1)
        topo.attach_host(2, 2)
        topo.connect_devices(1, 2)
        plan = DeploymentPlanner(_fabric()).plan(topo)
        assert set(plan) == {1, 2}
        assert len(set(plan.values())) == 2

    def test_prefers_switches_near_attached_hosts(self):
        topo = AbstractTopology()
        topo.add_device(1, compile_netcl(ECHO % 1, 1))
        topo.attach_host(1, 1)  # host 1 sits on physical switch 1
        plan = DeploymentPlanner(_fabric()).plan(topo)
        assert plan[1] == 1

    def test_respects_resource_headroom(self):
        # AGG needs all 12 stages; a fabric whose switches only have 6
        # free stages cannot host it.
        cp = compile_app("agg", 1)
        topo = AbstractTopology()
        topo.add_device(1, cp)
        topo.attach_host(1, 1)
        fab = PhysicalFabric()
        fab.add_switch(1, free_stages=6)
        fab.add_host(1)
        fab.link(HOST(1), DEVICE(1))
        with pytest.raises(DeploymentError, match="no physical switch has room"):
            DeploymentPlanner(fab).plan(topo)
        fab.switches[1].free_stages = 12
        assert DeploymentPlanner(fab).plan(topo) == {1: 1}

    def test_unfitted_program_rejected(self):
        topo = AbstractTopology()
        topo.add_device(1, compile_netcl(ECHO % 1, 1, fit=False))
        with pytest.raises(DeploymentError, match="not fitted"):
            DeploymentPlanner(_fabric()).plan(topo)

    def test_unknown_host_rejected(self):
        topo = AbstractTopology()
        topo.add_device(1, compile_netcl(ECHO % 1, 1))
        topo.attach_host(99, 1)
        with pytest.raises(DeploymentError, match="host 99"):
            DeploymentPlanner(_fabric()).plan(topo)


class TestFailurePaths:
    def test_infeasible_placement_attaches_breakdown(self):
        cp = compile_app("agg", 1)  # needs all 12 stages
        topo = AbstractTopology()
        topo.add_device(1, cp)
        topo.attach_host(1, 1)
        fab = _fabric(num_switches=2)
        for sw in fab.switches.values():
            sw.free_stages = 6
        with pytest.raises(DeploymentError) as ei:
            DeploymentPlanner(fab).plan(topo)
        bd = ei.value.breakdown
        assert bd is not None and bd.device == 1
        assert {sw.switch_id for sw in bd.switches} == {1, 2}
        assert all("stages 6 < 12" in sw.reason for sw in bd.switches)
        # the rendered message carries the same per-switch attribution
        assert "switch 1" in str(ei.value) and "stages 6 < 12" in str(ei.value)
        d = bd.to_dict()
        assert d["device"] == 1 and len(d["switches"]) == 2

    def test_disconnected_fabric_rejected(self):
        topo = AbstractTopology()
        topo.add_device(1, compile_netcl(ECHO % 1, 1))
        topo.attach_host(1, 1)
        fab = PhysicalFabric()
        fab.add_switch(1)
        fab.add_host(1)  # no link: the host is an island
        with pytest.raises(DeploymentError, match="disconnected fabric"):
            DeploymentPlanner(fab).plan(topo)

    def test_duplicate_host_attachment_rejected(self):
        topo = AbstractTopology()
        topo.add_device(1, compile_netcl(ECHO % 1, 1))
        topo.add_device(2, compile_netcl(ECHO % 2, 2))
        topo.attach_host(1, 1)
        topo.attach_host(1, 1)  # same attachment again: fine
        with pytest.raises(ValueError, match="already attached"):
            topo.attach_host(1, 2)

    def test_unknown_headroom_kwarg_rejected(self):
        fab = PhysicalFabric()
        with pytest.raises(TypeError, match="free_stagez"):
            fab.add_switch(1, free_stagez=6)
        fab.add_switch(1, free_stages=6, free_sram_pct=50.0)
        assert fab.switches[1].free_stages == 6
        with pytest.raises(ValueError, match="already in the fabric"):
            fab.add_switch(1)

    def test_plan_is_deterministic(self):
        def one_plan():
            topo = AbstractTopology()
            for dev_id in (1, 2, 3):
                topo.add_device(dev_id, compile_netcl(ECHO % dev_id, dev_id))
            topo.attach_host(1, 1)
            topo.attach_host(2, 3)
            topo.connect_devices(1, 2)
            topo.connect_devices(2, 3)
            return DeploymentPlanner(_fabric(num_switches=5)).plan(topo)

        assert one_plan() == one_plan()


class TestLiveDeployment:
    def test_deployed_network_serves_traffic_through_transit(self):
        """One abstract device lands next to its host on a 4-switch line;
        traffic from the far host transits the unused switches."""
        topo = AbstractTopology()
        cp = compile_netcl(ECHO % 2, 2, program_name="echo2")
        topo.add_device(2, cp)
        topo.attach_host(2, 2)  # host 2 hangs off physical switch 4
        plan = DeploymentPlanner(_fabric(num_switches=4)).deploy(topo)
        assert plan.physical_for(2) == 4

        net = plan.network
        h1 = net.hosts[1]
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        # host 1 (switch 1) asks for the computation at abstract device 2
        # (switch 4): the packet transits switches 1-3 untouched.
        h1.send_message(Message(src=1, dst=1, comp=1, to=2), spec, [40, None])
        net.sim.run()
        assert len(h1.received) == 1
        _, values = unpack(h1.received[0][1].to_wire(), spec)
        assert values == [40, 42]
        transits = [d for d in plan.devices.values() if d.device_id >= 10_000]
        assert len(transits) == 3
        assert all(t.packets_computed == 0 for t in transits)
        assert sum(t.packets_seen for t in transits) >= 2

    def test_paxos_deploys_onto_larger_fabric(self):
        """The 5-device P4xos abstract topology deploys onto a 7-switch
        fabric and still reaches consensus."""
        from repro.apps.paxos import (
            ACCEPTOR_DEVS,
            ACCEPTOR_MCAST,
            LEADER_DEV,
            LEARNER_DEV,
        )

        topo = AbstractTopology()
        cps = {}
        cps[LEADER_DEV] = compile_app("paxos", LEADER_DEV)
        topo.add_device(LEADER_DEV, cps[LEADER_DEV])
        for i, d in enumerate(ACCEPTOR_DEVS):
            cps[d] = compile_app("paxos", d, defines={"ACCEPTOR_ID": i})
            topo.add_device(d, cps[d])
            topo.connect_devices(LEADER_DEV, d)
            topo.connect_devices(d, LEARNER_DEV)
        cps[LEARNER_DEV] = compile_app("paxos", LEARNER_DEV)
        topo.add_device(LEARNER_DEV, cps[LEARNER_DEV])
        topo.attach_host(1, LEADER_DEV)
        topo.attach_host(2, LEARNER_DEV)
        topo.add_multicast_group(ACCEPTOR_MCAST, [DEVICE(d) for d in ACCEPTOR_DEVS])

        fab = PhysicalFabric()
        for sid in range(1, 8):
            fab.add_switch(sid)
        # a small mesh: line plus chords
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (2, 6), (3, 5)]:
            fab.link(DEVICE(a), DEVICE(b))
        fab.add_host(1)
        fab.add_host(2)
        fab.link(HOST(1), DEVICE(1))
        fab.link(HOST(2), DEVICE(7))

        plan = DeploymentPlanner(fab).deploy(topo)
        net = plan.network
        spec = KernelSpec.from_kernel(cps[LEADER_DEV].kernels()[0])
        h1 = net.hosts[1]
        h2 = net.hosts[2]
        delivered = []
        h2.on_receive = lambda p, t: delivered.append(unpack(p.to_wire(), spec)[1])
        for i in range(3):
            h1.send_message(
                Message(src=1, dst=2, comp=1, to=LEADER_DEV),
                spec,
                [0, 0, 1, None, None, [i] * 8],
            )
        net.sim.run()
        chosen = [v for v in delivered if v[0] == 3]  # MSG_DELIVER
        assert len(chosen) == 3
