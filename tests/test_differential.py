"""Differential testing: compiled NetCL vs handwritten P4.

Both device implementations of each application receive identical packet
sequences; their forwarding decisions and output messages must agree.
This is the strongest evidence behind Fig. 14's "NetCL == handwritten
P4" — the two stacks share no code above the byte level.
"""

import random


from repro.apps import compile_app, p4_source
from repro.p4 import P4NetCLSwitchDevice, parse_p4
from repro.runtime import NetCLDevice
from repro.runtime.message import NetCLPacket, NO_DEVICE


def _agg_pair():
    cp = compile_app("agg", 1, defines={"NUM_WORKERS": 2})
    ncl = NetCLDevice(1, cp.module, cp.kernels())
    p4 = P4NetCLSwitchDevice(parse_p4(p4_source("agg")), 1)
    return ncl, p4


def _cache_pair():
    cp = compile_app("cache", 1)
    ncl = NetCLDevice(1, cp.module, cp.kernels())
    p4 = P4NetCLSwitchDevice(parse_p4(p4_source("cache")), 1)
    # install the same three keys on both
    from repro.runtime import DeviceConnection

    conn = DeviceConnection(ncl)
    for j, key in enumerate((5, 6, 7)):
        value = [key * 11 + i for i in range(16)]
        wmap = (1 << 16) - 1
        for i, w in enumerate(value):
            conn.managed_write("Data", w, index=i * 1024 + j)
            p4.register_write(f"data_{i}", j, w)
        conn.managed_insert("Index", key, value=(wmap << 16) | j)
        conn.managed_write("Valid", 1, index=j)
        p4.insert_entry("cache_index", [key], "index_set", [wmap, j])
        p4.register_write("valid", j, 1)
    return ncl, p4


def _compare(decisions):
    a, b = decisions
    assert a.kind == b.kind, (a, b)
    if a.packet is None:
        assert b.packet is None
        return
    assert a.target == b.target
    assert a.packet.data == b.packet.data, (a.packet.data.hex(), b.packet.data.hex())
    assert a.packet.act == b.packet.act


class TestAggDifferential:
    def test_random_slot_traffic_agrees(self):
        ncl, p4 = _agg_pair()
        rng = random.Random(42)
        # random interleaving of 2 workers over 8 slots, with duplicates
        for step in range(300):
            worker = rng.randrange(2)
            slot = rng.randrange(8)
            ver = rng.randrange(2)
            vals = [rng.randrange(0, 1 << 20) for _ in range(32)]
            exp = rng.randrange(0, 32)
            data = bytes([ver]) + slot.to_bytes(2, "big")
            data += (ver * 256 + slot).to_bytes(2, "big")
            data += (1 << worker).to_bytes(2, "big") + bytes([exp])
            for v in vals:
                data += v.to_bytes(4, "big")
            pkt = NetCLPacket(
                src=worker + 1, dst=worker + 1, from_=NO_DEVICE, to=1,
                comp=1, act=0, data=data,
            )
            _compare((ncl.process(pkt.copy()), p4.process(pkt.copy())))


class TestCacheDifferential:
    def test_random_get_put_del_agrees(self):
        ncl, p4 = _cache_pair()
        rng = random.Random(7)
        for step in range(400):
            op = rng.choice([1, 1, 1, 2, 3])  # GET-heavy
            key = rng.choice([5, 6, 7, 100, 101, 102])
            vals = [rng.randrange(0, 1 << 30) for _ in range(16)]
            data = bytes([op]) + key.to_bytes(8, "big") + bytes([0, 0])
            for v in vals:
                data += v.to_bytes(4, "big")
            pkt = NetCLPacket(
                src=1, dst=2, from_=NO_DEVICE, to=1, comp=1, act=0, data=data
            )
            _compare((ncl.process(pkt.copy()), p4.process(pkt.copy())))


class TestCalcDifferential:
    def test_all_opcodes_agree(self):
        cp = compile_app("calc", 1)
        ncl = NetCLDevice(1, cp.module, cp.kernels())
        p4 = P4NetCLSwitchDevice(parse_p4(p4_source("calc")), 1)
        rng = random.Random(3)
        ops = [ord(c) for c in "+-&|^"] + [0, 255]  # incl. invalid opcodes
        for _ in range(200):
            op = rng.choice(ops)
            a, b = rng.randrange(1 << 32), rng.randrange(1 << 32)
            data = bytes([op]) + a.to_bytes(4, "big") + b.to_bytes(4, "big") + bytes(4)
            pkt = NetCLPacket(
                src=1, dst=1, from_=NO_DEVICE, to=1, comp=1, act=0, data=data
            )
            _compare((ncl.process(pkt.copy()), p4.process(pkt.copy())))
