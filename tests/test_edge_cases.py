"""Edge cases across the stack: empty placements, odd widths, emitter
microprograms, partitioned managed memory."""


from repro.core import compile_netcl
from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.runtime import DeviceConnection, NetCLDevice
from tests.conftest import FIG4_CACHE


class TestEmptyPlacements:
    def test_device_with_no_kernels(self):
        src = "_kernel(1) _at(7) void k(unsigned x) { }"
        cp = compile_netcl(src, device_id=3)
        assert cp.kernels() == []
        assert cp.report is not None  # base program still fits
        dev = NetCLDevice(3, cp.module, cp.kernels())
        from repro.runtime.message import NetCLPacket, NO_DEVICE

        # everything is a no-op transit
        pkt = NetCLPacket(src=1, dst=2, from_=NO_DEVICE, to=7, comp=1, act=0, data=b"\0\0\0\0")
        d = dev.process(pkt)
        assert d.kind.value == "to_device" and d.target == 7

    def test_module_with_only_memory(self):
        cp = compile_netcl("_managed_ unsigned cfg[16];", device_id=1)
        assert "cfg" in cp.module.globals and cp.kernels() == []


class TestOddWidths:
    def test_one_bit_fields(self):
        src = "_kernel(1) void k(bool b, unsigned &r) { r = b ? 7 : 9; }"
        cp = compile_netcl(src, 1, fit=False)
        interp = IRInterpreter(cp.module, GlobalState())
        for b, expected in ((1, 7), (0, 9)):
            msg = KernelMessage({"b": b, "r": 0})
            interp.run_kernel(cp.kernels()[0], msg)
            assert msg.fields["r"] == expected

    def test_u64_arithmetic_wraps(self):
        src = "_kernel(1) void k(uint64_t a, uint64_t &r) { r = a + 1; }"
        cp = compile_netcl(src, 1, fit=False)
        interp = IRInterpreter(cp.module, GlobalState())
        msg = KernelMessage({"a": (1 << 64) - 1, "r": 0})
        interp.run_kernel(cp.kernels()[0], msg)
        assert msg.fields["r"] == 0

    def test_u8_counter_wraps_in_register(self):
        src = (
            "_net_ uint8_t c;\n"
            "_kernel(1) void k(unsigned &r) { r = ncl::atomic_add_new(&c, 200); }"
        )
        cp = compile_netcl(src, 1, fit=False)
        interp = IRInterpreter(cp.module, GlobalState())
        outs = []
        for _ in range(2):
            msg = KernelMessage({"r": 0})
            interp.run_kernel(cp.kernels()[0], msg)
            outs.append(msg.fields["r"])
        assert outs == [200, (400) & 0xFF]


class TestEmitterMicroprograms:
    def _p4(self, src):
        return compile_netcl(src, 1, fit=False).p4_source

    def test_conditional_atomic_single_salu_program(self):
        src = (
            "_net_ unsigned m[8];\n"
            "_kernel(1) void k(unsigned c, unsigned v, unsigned &r) {\n"
            "  r = ncl::atomic_cond_add_new(&m[0], c != 0, v); }"
        )
        p4 = self._p4(src)
        # condition handled inside the RegisterAction (one stage, §V-D)
        assert "if (" in p4 and "mem = mem + " in p4 and "rv = mem;" in p4

    def test_cas_microprogram(self):
        src = (
            "_net_ unsigned m;\n"
            "_kernel(1) void k(unsigned exp, unsigned v, unsigned &old) {\n"
            "  old = ncl::atomic_cas(&m, exp, v); }"
        )
        p4 = self._p4(src)
        assert "if (mem ==" in p4

    def test_saturating_microprogram_uses_p4_saturation(self):
        src = (
            "_net_ unsigned m;\n"
            "_kernel(1) void k(unsigned v, unsigned &r) { r = ncl::atomic_sadd_new(&m, v); }"
        )
        assert "|+|" in self._p4(src)

    def test_range_table_entries(self):
        src = (
            "_net_ _lookup_ ncl::rv<int,int> t[2] = {{{1,10},1}, {{11,20},2}};\n"
            "_kernel(1) void k(int x, int &v, unsigned &h) { h = ncl::lookup(t, x, v); }"
        )
        p4 = self._p4(src)
        assert ": range;" in p4 and "1 .. 10" in p4


class TestPartitionedManagedMemory:
    def test_host_writes_reach_partitioned_rows(self):
        """After partitioning cms -> cms.part0..2, control-plane writes by
        base name land where the kernel reads them."""
        cp = compile_netcl(FIG4_CACHE, 1, program_name="fig4")
        assert "cms.part1" in cp.module.globals
        dev = NetCLDevice(1, cp.module, cp.kernels())
        conn = DeviceConnection(dev)
        # row 1, column 5 in the original [3][65536] layout
        conn.managed_write("cms", 1234, index=1 * 65536 + 5)
        gv = cp.module.globals["cms.part1"]
        assert dev.state.read(gv, [5]) == 1234

    def test_reset_sketch_via_control_plane(self):
        cp = compile_netcl(FIG4_CACHE, 1, program_name="fig4")
        dev = NetCLDevice(1, cp.module, cp.kernels())
        from repro.runtime import KernelSpec, Message, pack
        from repro.runtime.message import NetCLPacket

        spec = KernelSpec.from_kernel(cp.kernels()[0])
        for _ in range(3):
            raw = pack(Message(src=1, dst=2, comp=1, to=1), spec, [1, 77, None, None, None])
            dev.process(NetCLPacket.from_wire(raw))
        snapshot = dev.state.cp_register_read_all("cms")
        assert snapshot.sum() == 9  # 3 rows x 3 misses
        # host resets the sketch (a slow-path managed operation, §V-B)
        for i in range(snapshot.size):
            if snapshot[i]:
                dev.state.cp_register_write("cms", 0, i)
        assert dev.state.cp_register_read_all("cms").sum() == 0
