"""Compiler fuzzing: random kernels, optimized vs reference execution.

A seeded generator produces small random NetCL kernels (arithmetic,
nested control flow, unrollable loops, local scalars/arrays, global
register arrays with masked indices, atomics).  Each kernel is executed
(a) straight after lowering and (b) after the full middle-end pipeline,
on identical random inputs; message fields and global memory must match
bit-for-bit.  This exercises mem2reg, folding, if-conversion, SROA, DCE,
hoisting, speculation, and intrinsic conversion in combination.

Every fuzzed pipeline additionally runs under translation validation
(``PassOptions(verify_passes=True)``): each pass is differentially
executed against the kernel's pre-pipeline behavior, so a miscompile is
pinned to the offending pass instead of surfacing as an end-to-end diff.
"""

from __future__ import annotations

import random

import pytest

from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import PassOptions, run_default_pipeline
from repro.passes.memcheck import MemoryCheckError


class KernelGenerator:
    """Generates one random, always-legal NetCL kernel."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.scalars = ["a", "b", "c"]  # by-value args
        self.outs = ["r0", "r1"]  # by-ref args
        self.locals: list[str] = []
        self.globals = ["g0", "g1"]
        self.depth = 0

    # -- expressions ----------------------------------------------------------
    def expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth > 2:
            return self.atom()
        pick = r.randrange(10)
        if pick < 4:
            return self.atom()
        if pick < 8:
            op = r.choice(["+", "-", "*", "&", "|", "^"])
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if pick == 8:
            sh = r.randrange(1, 8)
            return f"({self.expr(depth + 1)} >> {sh})"
        return f"({self.cond(depth + 1)} ? {self.expr(depth + 1)} : {self.expr(depth + 1)})"

    def atom(self) -> str:
        r = self.rng
        pool = self.scalars + self.locals
        pick = r.randrange(4)
        if pick == 0 or not pool:
            return str(r.randrange(0, 1 << 16))
        return r.choice(pool)

    def cond(self, depth: int = 0) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"({self.expr(depth)} {op} {self.expr(depth)})"

    # -- statements -------------------------------------------------------------
    def stmt(self, indent: str) -> str:
        r = self.rng
        self.depth += 1
        try:
            pick = r.randrange(10)
            if pick < 3:  # assignment to an out or a local
                if self.locals and r.random() < 0.6:
                    target = r.choice(self.locals)
                else:
                    target = r.choice(self.outs)
                return f"{indent}{target} = {self.expr()};"
            if pick < 4:  # reassign a local
                if not self.locals:
                    return f"{indent}{self.rng.choice(self.outs)} = {self.expr()};"
                return f"{indent}{self.rng.choice(self.locals)} = {self.expr()};"
            if pick < 6 and self.depth < 3:  # if / if-else
                body = self.stmt(indent + "  ")
                if r.random() < 0.5:
                    other = self.stmt(indent + "  ")
                    return (
                        f"{indent}if {self.cond()} {{\n{body}\n{indent}}} "
                        f"else {{\n{other}\n{indent}}}"
                    )
                return f"{indent}if {self.cond()} {{\n{body}\n{indent}}}"
            if pick < 7 and self.depth < 2:  # small unrollable loop
                n = r.randrange(2, 5)
                var = f"i{self.depth}"
                inner = f"{indent}  {r.choice(self.outs)} = {r.choice(self.outs)} + {var};"
                return f"{indent}for (auto {var} = 0; {var} < {n}; ++{var}) {{\n{inner}\n{indent}}}"
            if pick < 9:  # atomic on a global with masked index
                g = r.choice(self.globals)
                op = r.choice(["add", "xor", "or", "max"])
                out = r.choice(self.outs)
                return (
                    f"{indent}{out} = ncl::atomic_{op}_new(&{g}[{r.choice(self.scalars)} & 7], "
                    f"{self.expr()});"
                )
            # compound assignment
            return f"{indent}{r.choice(self.outs)} {r.choice(['+=', '^=', '|='])} {self.expr()};"
        finally:
            self.depth -= 1

    def generate(self) -> str:
        # Locals are pre-declared at kernel scope so nested statements can
        # reference them freely (the generator never emits shadowing); each
        # initializer may only use previously-declared names.
        self.locals = []
        decl_lines = []
        for name in ("t0", "t1"):
            decl_lines.append(f"  unsigned {name} = {self.expr()};")
            self.locals.append(name)
        decls = "\n".join(decl_lines)
        body = decls + "\n" + "\n".join(
            self.stmt("  ") for _ in range(self.rng.randrange(3, 7))
        )
        return (
            "_net_ unsigned g0[8];\n"
            "_net_ unsigned g1[8];\n"
            "_kernel(1) void k(unsigned a, unsigned b, unsigned c, "
            "unsigned &r0, unsigned &r1) {\n"
            f"{body}\n}}\n"
        )


def _run(module, inputs):
    state = GlobalState()
    interp = IRInterpreter(module, state, device_id=1)
    fn = module.kernels()[0]
    outputs = []
    for a, b, c in inputs:
        msg = KernelMessage({"a": a, "b": b, "c": c, "r0": 0, "r1": 0})
        out = interp.run_kernel(fn, msg)
        outputs.append((out.kind, msg.fields["r0"], msg.fields["r1"]))
    mem = {
        name: state.cp_register_read_all(name).tolist() for name in ("g0", "g1")
    }
    return outputs, mem


@pytest.mark.parametrize("seed", range(40))
def test_random_kernel_optimization_is_semantics_preserving(seed):
    src = KernelGenerator(seed).generate()
    rng = random.Random(1000 + seed)
    inputs = [
        (rng.randrange(1 << 32), rng.randrange(1 << 32), rng.randrange(1 << 32))
        for _ in range(8)
    ]

    ref_mod = lower_to_ir(analyze(parse_source(src)))
    ref_out, ref_mem = _run(ref_mod, inputs)

    for target in ("v1model", "tna"):
        opt_mod = lower_to_ir(analyze(parse_source(src)))
        try:
            run_default_pipeline(
                opt_mod, PassOptions(target=target, verify_passes=True)
            )
        except MemoryCheckError:
            continue  # random program violates Tofino memory rules: fine
        opt_out, opt_mem = _run(opt_mod, inputs)
        assert opt_out == ref_out, f"seed {seed} target {target}:\n{src}"
        assert opt_mem == ref_mem, f"seed {seed} target {target} memory:\n{src}"


@pytest.mark.parametrize("seed", range(40))
def test_random_kernel_lint_never_crashes_nor_mutates(seed):
    """The linter is a pure observer: on every fuzzed program it must
    (a) never raise and (b) leave the module bit-identical — same IR
    dump, still verifier-clean — before and after.
    """
    from repro.analysis import DiagnosticEngine, run_lints
    from repro.ir import verify_module

    src = KernelGenerator(seed).generate()
    module = lower_to_ir(analyze(parse_source(src)))
    verify_module(module)
    before = module.dump()

    engine = DiagnosticEngine(source_name=f"fuzz-{seed}")
    run_lints(module, engine)
    for d in engine.diagnostics:
        assert d.code, f"seed {seed}: diagnostic without a code: {d}"

    assert module.dump() == before, f"seed {seed}: lint mutated the module"
    verify_module(module)
