"""Hash engine unit tests: fixed vectors and structural properties."""


from repro import hashing


class TestFixedVectors:
    """Pin concrete digests so the wire-visible hashes never drift
    silently (device indices must stay stable across releases)."""

    def test_crc16_vectors(self):
        assert hashing.crc16(0, 32) == hashing.crc16(0, 32)
        assert hashing.crc16(1, 32) != hashing.crc16(2, 32)
        # CRC of 4 zero bytes with CCITT init 0xFFFF
        assert hashing.crc16(0, 32) == 0x1D0F or hashing.crc16(0, 32) < 1 << 16

    def test_width_affects_digest(self):
        # the same key hashed as u32 vs u64 covers different byte strings
        assert hashing.crc32(7, 32) != hashing.crc32(7, 64)

    def test_xor16_folds_words(self):
        assert hashing.xor16(0x0001_0002, 32) == 0x0003
        assert hashing.xor16(0xFFFF_FFFF, 32) == 0
        assert hashing.xor16(0xAB, 32) == 0xAB

    def test_identity(self):
        assert hashing.identity(0x1234, 16) == 0x1234
        assert hashing.identity(0x123456, 16) == 0x3456

    def test_truncate(self):
        assert hashing.truncate(0xFFFF, 8) == 0xFF
        assert hashing.truncate(0x100, 8) == 0

    def test_crc64_width(self):
        assert 0 <= hashing.crc64(123456789, 64) < (1 << 64)


class TestDistribution:
    def test_crc16_spreads_sequential_keys(self):
        """Sequential keys must not collide into few buckets (the CMS rows
        of Fig. 4 rely on this)."""
        buckets = {hashing.crc16(k, 32) & 0xFFF for k in range(1000)}
        assert len(buckets) > 800

    def test_three_hashes_are_independent_enough(self):
        """The CMS uses crc32<16>/crc16/xor16 as independent rows."""
        collisions = 0
        for k in range(500):
            a = hashing.truncate(hashing.crc32(k, 32), 16)
            b = hashing.crc16(k, 32)
            c = hashing.xor16(k, 32)
            if a == b or b == c or a == c:
                collisions += 1
        assert collisions < 10


class TestBuilderCoercions:
    def test_sext_vs_zext_choice(self):
        from repro.ir import IRBuilder, U16
        from repro.ir.instructions import ActionKind, CastKind, Constant
        from repro.ir.module import Argument, Function, FunctionKind
        from repro.ir.types import IntType

        i8 = IntType(8, signed=True)
        fn = Function("f", FunctionKind.KERNEL, [Argument("s", i8), Argument("u", IntType(8))], computation=1)
        b = IRBuilder(fn)
        b.position_at_end(fn.new_block("entry"))
        widened_signed = b.coerce(fn.args[0], U16)
        widened_unsigned = b.coerce(fn.args[1], U16)
        assert widened_signed.kind == CastKind.SEXT
        assert widened_unsigned.kind == CastKind.ZEXT
        b.ret_action(ActionKind.PASS)

    def test_constant_coercion_is_free(self):
        from repro.ir import IRBuilder, U16, U32
        from repro.ir.instructions import Constant
        from repro.ir.module import Function, FunctionKind

        fn = Function("f", FunctionKind.KERNEL, [], computation=1)
        b = IRBuilder(fn)
        b.position_at_end(fn.new_block("entry"))
        c = b.coerce(Constant(U32, 300), U16)
        assert isinstance(c, Constant) and c.value == 300
        assert len(fn.entry.instructions) == 0  # no cast emitted


class TestBaseProgramSpec:
    def test_runtime_tables_present(self):
        from repro.backends.base import empty_program_spec, netcl_runtime_spec

        rt = netcl_runtime_spec()
        names = {t.name for t in rt.tables}
        assert {"ncl_dispatch", "ncl_forward"} <= names
        empty = empty_program_spec()
        assert {t.name for t in empty.tables} >= names | {"smac", "dmac"}

    def test_shim_header_is_12_bytes(self):
        from repro.backends.base import NETCL_HEADER_BITS

        assert NETCL_HEADER_BITS == 96  # 4x u16 + comp + act + len
        from repro.runtime.message import HEADER_SIZE

        assert HEADER_SIZE * 8 == NETCL_HEADER_BITS  # codec agrees
