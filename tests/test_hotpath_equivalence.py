"""Hot-path overhaul equivalence (ISSUE 7 acceptance).

The simulator optimization (tuple-heap events, tracer guards, pooled
multicast replicas, incremental routing, deadline-based retransmission
timers) must be *observably invisible*: the golden values below were
captured on the pre-overhaul simulator with the same seeds, and every
run here must reproduce them bit-identically — application results,
every telemetry counter (the digest covers the full metric snapshot),
drop/lost totals, and (for traced runs) the exact number of traces and
recorded hops.  Tracing on must not change the digest either.

If a deliberate behavioral change ever invalidates these goldens,
recapture them in the same commit and say why in its message.
"""

from __future__ import annotations

import pytest

from repro.chaos.scenarios import run_agg_chaos, run_cache_chaos

SEED = 7

GOLDEN = {
    "agg": {
        "digest": "9bc9f574bc29b4bcc0bbb97693cb1ada2f787102be024dbc10cd582a54d71b91",
        "dropped": 147,
        "lost": 34,
        "traces": 355,
        "trace_events": 1126,
    },
    "cache": {
        "digest": "7db7c3d38af5139a42a39e759d11e7d9373350c6b7fc3963d860eb9a1d35a31e",
        "dropped": 0,
        "lost": 12,
        "traces": 68,
        "trace_events": 347,
    },
}


def _dropped(result) -> int:
    return sum(
        v for k, v in result.metrics.items() if k.startswith("net.drop.")
    )


def _lost(result) -> int:
    return int(result.metrics.get("net.lost", 0))


@pytest.mark.parametrize("app", ["agg", "cache"])
@pytest.mark.parametrize("trace", [False, True])
def test_chaos_run_matches_pre_overhaul_golden(app, trace):
    run = run_agg_chaos if app == "agg" else run_cache_chaos
    result = run(seed=SEED, trace=trace)
    want = GOLDEN[app]

    assert result.ok, result.errors
    assert result.digest == want["digest"]
    assert _dropped(result) == want["dropped"]
    assert _lost(result) == want["lost"]
    if trace:
        assert result.traces == want["traces"]
        assert result.trace_events == want["trace_events"]
    else:
        assert result.traces == 0
        assert result.trace_events == 0


@pytest.mark.parametrize("app", ["agg", "cache"])
def test_tracing_does_not_perturb_digest(app):
    """A traced run and an untraced run are the same run."""
    run = run_agg_chaos if app == "agg" else run_cache_chaos
    plain = run(seed=SEED, trace=False)
    traced = run(seed=SEED, trace=True)
    assert plain.digest == traced.digest
    assert plain.sim_ns == traced.sim_ns
    assert traced.trace_events > 0
