"""Cross-cutting integration edges: UDP device chains, simplify/CFG
invariants, structurizer verification, AGG protocol corner cases."""


from repro.core import compile_netcl
from repro.ir import verify_function
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import mem2reg, simplify_function
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.udp import UdpHost, UdpSwitch

CHAIN = r"""
_at(1) _kernel(1) void first(unsigned &trail) {
  trail = trail * 10 + 1;
  return ncl::send_to_device(2);
}
_at(2) _kernel(1) void second(unsigned &trail) {
  trail = trail * 10 + 2;
  return ncl::pass();
}
"""


class TestUdpDeviceChain:
    def test_two_udp_switches_chain(self):
        cp1 = compile_netcl(CHAIN, 1, program_name="chain")
        cp2 = compile_netcl(CHAIN, 2, program_name="chain")
        d1 = NetCLDevice(1, cp1.module, cp1.kernels())
        d2 = NetCLDevice(2, cp2.module, cp2.kernels())
        spec = KernelSpec.from_kernel(cp1.kernels()[0])
        with UdpSwitch(d1) as s1, UdpSwitch(d2) as s2:
            s1.register_device(2, s2.endpoint.addr)
            with UdpHost(1) as client, UdpHost(2) as sink:
                client.connect(s1)
                sink.connect(s2)
                # chain: h1 -> d1 (computes) -> d2 (computes) -> h2
                client.send(Message(src=1, dst=2, comp=1, to=1), spec, [0])
                _, values = sink.recv(spec)
                assert values == [12]
                assert d1.packets_computed == 1 and d2.packets_computed == 1


class TestSimplifyInvariants:
    def test_verify_after_every_stage(self):
        src = (
            "_net_ unsigned g[8];\n"
            "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {\n"
            "  unsigned t = 0;\n"
            "  if (a > b) { t = a - b; } else { t = b - a; }\n"
            "  if (t > 100) { r = ncl::atomic_add_new(&g[a & 7], t); }\n"
            "  else { r = t; } }"
        )
        fn = lower_to_ir(analyze(parse_source(src))).kernels()[0]
        verify_function(fn)
        mem2reg(fn)
        verify_function(fn)
        simplify_function(fn)
        verify_function(fn)

    def test_dead_diamond_collapses_to_line(self):
        src = (
            "_kernel(1) void k(unsigned &r) {\n"
            "  unsigned t;\n"
            "  if (3 > 2) t = 1; else t = 2;\n"
            "  r = t; }"
        )
        fn = lower_to_ir(analyze(parse_source(src))).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert len(fn.blocks) == 1


class TestStructurizerVerification:
    def test_tree_covers_every_reachable_block(self, fig4_module):
        from repro.passes import (
            PassOptions,
            eliminate_phis,
            run_default_pipeline,
            structurize,
        )
        from repro.passes.structurize import LeafNode, SeqNode, IfNode

        run_default_pipeline(fig4_module, PassOptions())
        fn = fig4_module.functions["query"]
        eliminate_phis(fn)
        tree = structurize(fn)

        seen = set()

        def walk(node):
            if isinstance(node, LeafNode) and node.block is not None:
                seen.add(id(node.block))
            elif isinstance(node, SeqNode):
                for i in node.items:
                    walk(i)
            elif isinstance(node, IfNode):
                walk(node.then)
                if node.els:
                    walk(node.els)

        walk(tree)
        from repro.ir.dominators import reachable_blocks

        assert seen == reachable_blocks(fn)


class TestAggProtocolCorners:
    def _device(self, workers=2):
        from repro.apps import compile_app

        cp = compile_app("agg", 1, defines={"NUM_WORKERS": workers})
        return NetCLDevice(1, cp.module, cp.kernels()), KernelSpec.from_kernel(cp.kernels()[0])

    def _pkt(self, spec, worker, ver, slot, vals, exp=1):
        from repro.runtime.message import NetCLPacket, pack

        raw = pack(
            Message(src=worker + 1, dst=worker + 1, comp=1, to=1),
            spec,
            [ver, slot, ver * 256 + slot, 1 << worker, exp, vals],
        )
        from repro.runtime.message import NetCLPacket

        return NetCLPacket.from_wire(raw)

    def test_early_spurious_retransmission_dropped(self):
        dev, spec = self._device()
        # worker 0 contributes; retransmits before worker 1 arrives
        assert dev.process(self._pkt(spec, 0, 0, 3, [5] * 32)).kind.value == "drop"
        d = dev.process(self._pkt(spec, 0, 0, 3, [5] * 32))
        assert d.kind.value == "drop"  # not a bogus multicast (cnt==1 case)
        # worker 1 completes the slot
        d2 = dev.process(self._pkt(spec, 1, 0, 3, [7] * 32))
        assert d2.kind.value == "multicast"

    def test_duplicate_contribution_does_not_double_count(self):
        dev, spec = self._device(workers=3)
        dev.process(self._pkt(spec, 0, 0, 1, [1] * 32))
        dev.process(self._pkt(spec, 0, 0, 1, [1] * 32))  # duplicate
        dev.process(self._pkt(spec, 1, 0, 1, [1] * 32))
        d = dev.process(self._pkt(spec, 2, 0, 1, [1] * 32))
        assert d.kind.value == "multicast"
        from repro.runtime.message import unpack

        _, values = unpack(d.packet.to_wire(), spec)
        assert values[5] == [3] * 32  # exactly one contribution per worker

    def test_version_flip_reuses_slot(self):
        dev, spec = self._device()
        for ver in (0, 1, 0, 1):
            dev.process(self._pkt(spec, 0, ver, 9, [2] * 32))
            d = dev.process(self._pkt(spec, 1, ver, 9, [3] * 32))
            assert d.kind.value == "multicast", ver
            from repro.runtime.message import unpack

            _, values = unpack(d.packet.to_wire(), spec)
            assert values[5] == [5] * 32
