"""Behavioral interpreter: atomics, lookups, arithmetic semantics."""

import pytest

from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.ir.instructions import ActionKind, AtomicOp
from repro.ir.interp import InterpError
from repro.ir.module import GlobalVar, LookupEntry, LookupKind, MemSpace
from repro.ir.types import ArrayShape, U32
from repro.lang import analyze, lower_to_ir, parse_source


def _gv(name="m", elem=U32, dims=(8,), space=MemSpace.NET, **kw):
    return GlobalVar(name, elem, ArrayShape(dims), space, **kw)


class TestGlobalStateAtomics:
    def setup_method(self):
        self.state = GlobalState()
        self.gv = _gv()
        self.state.declare(self.gv)

    def test_zero_initialized(self):
        assert self.state.read(self.gv, [3]) == 0

    def test_add_returns_old_by_default(self):
        assert self.state.atomic(self.gv, [0], AtomicOp.ADD, 5) == 0
        assert self.state.read(self.gv, [0]) == 5

    def test_add_new_returns_new(self):
        assert self.state.atomic(self.gv, [0], AtomicOp.ADD, 5, return_new=True) == 5

    def test_saturating_add_clamps(self):
        self.state.write(self.gv, [0], U32.mask - 1)
        new = self.state.atomic(
            self.gv, [0], AtomicOp.ADD, 10, saturating=True, return_new=True
        )
        assert new == U32.mask

    def test_saturating_sub_clamps_at_zero(self):
        new = self.state.atomic(
            self.gv, [0], AtomicOp.SUB, 10, saturating=True, return_new=True
        )
        assert new == 0

    def test_wrapping_add(self):
        self.state.write(self.gv, [0], U32.mask)
        assert self.state.atomic(self.gv, [0], AtomicOp.ADD, 1, return_new=True) == 0

    def test_conditional_guarded_off_returns_old_and_skips(self):
        self.state.write(self.gv, [1], 7)
        out = self.state.atomic(
            self.gv, [1], AtomicOp.ADD, 5, cond=0, return_new=True
        )
        assert out == 7 and self.state.read(self.gv, [1]) == 7

    def test_conditional_performed(self):
        out = self.state.atomic(self.gv, [1], AtomicOp.ADD, 5, cond=1, return_new=True)
        assert out == 5

    def test_cas_success_and_failure(self):
        assert self.state.atomic(self.gv, [2], AtomicOp.CAS, 9, compare=0) == 0
        assert self.state.read(self.gv, [2]) == 9
        assert self.state.atomic(self.gv, [2], AtomicOp.CAS, 1, compare=0) == 9
        assert self.state.read(self.gv, [2]) == 9

    def test_min_max_exch(self):
        self.state.write(self.gv, [0], 10)
        assert self.state.atomic(self.gv, [0], AtomicOp.MAX, 4, return_new=True) == 10
        assert self.state.atomic(self.gv, [0], AtomicOp.MIN, 4, return_new=True) == 4
        assert self.state.atomic(self.gv, [0], AtomicOp.EXCH, 99) == 4

    def test_and_or_xor(self):
        self.state.write(self.gv, [0], 0b1100)
        assert self.state.atomic(self.gv, [0], AtomicOp.OR, 0b0011, return_new=True) == 0b1111
        assert self.state.atomic(self.gv, [0], AtomicOp.AND, 0b1010, return_new=True) == 0b1010
        assert self.state.atomic(self.gv, [0], AtomicOp.XOR, 0b1010, return_new=True) == 0

    def test_out_of_range_index(self):
        with pytest.raises(InterpError, match="out of range"):
            self.state.read(self.gv, [8])

    def test_wrong_index_count(self):
        with pytest.raises(InterpError, match="indices"):
            self.state.read(self.gv, [0, 0])


class TestLookupState:
    def test_kv_lookup(self):
        gv = _gv(
            "t",
            U32,
            (4,),
            MemSpace.LOOKUP,
            lookup_kind=LookupKind.KV,
            key_type=U32,
            value_type=U32,
            entries=[LookupEntry(1, 1, 10), LookupEntry(2, 2, 20)],
        )
        st = GlobalState()
        st.declare(gv)
        assert st.lookup(gv, 1) == (True, 10)
        assert st.lookup(gv, 3) == (False, None)

    def test_range_lookup(self):
        gv = _gv(
            "r",
            U32,
            (2,),
            MemSpace.LOOKUP,
            lookup_kind=LookupKind.RV,
            key_type=U32,
            value_type=U32,
            entries=[LookupEntry(1, 10, 1), LookupEntry(11, 20, 2)],
        )
        st = GlobalState()
        st.declare(gv)
        assert st.lookup(gv, 10) == (True, 1)
        assert st.lookup(gv, 11) == (True, 2)
        assert st.lookup(gv, 21) == (False, None)


class TestControlPlane:
    def test_managed_write_and_read(self):
        gv = _gv("m", U32, (4,), MemSpace.MANAGED)
        st = GlobalState()
        st.declare(gv)
        st.cp_register_write("m", 42, 2)
        assert st.cp_register_read("m", 2) == 42

    def test_net_memory_not_host_writable(self):
        gv = _gv("m", U32, (4,), MemSpace.NET)
        st = GlobalState()
        st.declare(gv)
        with pytest.raises(InterpError, match="_managed_"):
            st.cp_register_write("m", 1)

    def test_managed_lookup_insert_modify_remove(self):
        gv = _gv(
            "t",
            U32,
            (4,),
            MemSpace.MANAGED_LOOKUP,
            lookup_kind=LookupKind.KV,
            key_type=U32,
            value_type=U32,
        )
        st = GlobalState()
        st.declare(gv)
        st.cp_table_insert("t", 5, value=50)
        assert st.lookup(gv, 5) == (True, 50)
        assert st.cp_table_modify("t", 5, 51)
        assert st.lookup(gv, 5) == (True, 51)
        assert st.cp_table_remove("t", 5)
        assert st.lookup(gv, 5) == (False, None)

    def test_static_lookup_not_host_mutable(self):
        gv = _gv(
            "t",
            U32,
            (4,),
            MemSpace.LOOKUP,
            lookup_kind=LookupKind.SET,
            key_type=U32,
        )
        st = GlobalState()
        st.declare(gv)
        with pytest.raises(InterpError, match="_managed_"):
            st.cp_table_insert("t", 1)

    def test_table_capacity_enforced(self):
        gv = _gv(
            "t",
            U32,
            (1,),
            MemSpace.MANAGED_LOOKUP,
            lookup_kind=LookupKind.KV,
            key_type=U32,
            value_type=U32,
        )
        st = GlobalState()
        st.declare(gv)
        st.cp_table_insert("t", 1, value=1)
        with pytest.raises(InterpError, match="full"):
            st.cp_table_insert("t", 2, value=2)


class TestKernelExecution:
    """End-to-end interpretation of small compiled kernels."""

    def _run(self, src, fields, device_id=0, runs=1):
        mod = lower_to_ir(analyze(parse_source(src)))
        state = GlobalState()
        interp = IRInterpreter(mod, state, device_id=device_id)
        fn = mod.kernels()[0]
        msg = KernelMessage(dict(fields))
        for _ in range(runs):
            out = interp.run_kernel(fn, msg)
        return out, msg, state

    def test_implicit_pass(self):
        out, _, _ = self._run("_kernel(1) void k(int x) { }", {"x": 1})
        assert out.kind == ActionKind.PASS

    def test_byvalue_scalar_modification_is_local(self):
        out, msg, _ = self._run(
            "_kernel(1) void k(unsigned x) { x = x + 1; }", {"x": 5}
        )
        assert msg.fields["x"] == 5  # §V-A: receivers see the original

    def test_byref_scalar_modification_visible(self):
        out, msg, _ = self._run(
            "_kernel(1) void k(unsigned &x) { x = x + 1; }", {"x": 5}
        )
        assert msg.fields["x"] == 6

    def test_array_argument_updates_visible(self):
        out, msg, _ = self._run(
            "_kernel(1) void k(unsigned v[4]) { for (auto i=0;i<4;++i) v[i] = v[i]*2; }",
            {"v": [1, 2, 3, 4]},
        )
        assert msg.fields["v"] == [2, 4, 6, 8]

    def test_device_id_builtin(self):
        out, msg, _ = self._run(
            "_kernel(1) void k(unsigned &x) { x = device.id; }", {"x": 0}, device_id=9
        )
        assert msg.fields["x"] == 9

    def test_action_with_target(self):
        out, _, _ = self._run(
            "_kernel(1) void k(unsigned h) { return ncl::send_to_host(h); }", {"h": 4}
        )
        assert out.kind == ActionKind.SEND_TO_HOST and out.target == 4

    def test_signed_comparison(self):
        src = "_kernel(1) void k(int x, unsigned &r) { r = x < 0 ? 1 : 2; }"
        out, msg, _ = self._run(src, {"x": U32.mask, "r": 0})  # -1 as bits
        assert msg.fields["r"] == 1

    def test_unsigned_division_and_remainder(self):
        src = "_kernel(1) void k(unsigned a, unsigned b, unsigned &q, unsigned &r) { q = a / b; r = a % b; }"
        out, msg, _ = self._run(src, {"a": 17, "b": 5, "q": 0, "r": 0})
        assert (msg.fields["q"], msg.fields["r"]) == (3, 2)

    def test_global_state_persists_across_messages(self):
        src = (
            "_net_ unsigned c;\n"
            "_kernel(1) void k(unsigned &out) { out = ncl::atomic_inc_new(&c); }"
        )
        mod = lower_to_ir(analyze(parse_source(src)))
        state = GlobalState()
        interp = IRInterpreter(mod, state, device_id=0)
        fn = mod.kernels()[0]
        outs = []
        for _ in range(3):
            msg = KernelMessage({"out": 0})
            interp.run_kernel(fn, msg)
            outs.append(msg.fields["out"])
        assert outs == [1, 2, 3]

    def test_popcount_and_bit_helpers(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &p, unsigned &b) "
            "{ p = ncl::popcount(x); b = ncl::bit_chk(x, 3); }"
        )
        out, msg, _ = self._run(src, {"x": 0b1011, "p": 0, "b": 0})
        assert msg.fields["p"] == 3 and msg.fields["b"] == 1
