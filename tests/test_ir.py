"""Unit tests for the IR: types, instructions, builder, verifier,
dominators."""

import pytest

from repro.ir import (
    Action,
    ActionKind,
    ArrayShape,
    DominatorTree,
    Function,
    IRBuilder,
    IRVerifyError,
    IntType,
    U16,
    U32,
    U8,
    reverse_postorder,
    verify_function,
)
from repro.ir.instructions import (
    BinOp,
    BinOpKind,
    Constant,
    ICmpPred,
    Ret,
)
from repro.ir.module import Argument, FunctionKind


class TestIntType:
    def test_mask_and_range(self):
        assert U8.mask == 0xFF
        assert U8.max_value == 255 and U8.min_value == 0
        i8 = IntType(8, signed=True)
        assert i8.max_value == 127 and i8.min_value == -128

    def test_wrap_unsigned(self):
        assert U8.wrap(256) == 0
        assert U8.wrap(-1) == 255

    def test_wrap_signed(self):
        i8 = IntType(8, signed=True)
        assert i8.wrap(128) == -128
        assert i8.wrap(255) == -1

    def test_saturate(self):
        assert U8.saturate(300) == 255
        assert U8.saturate(-5) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(65)

    def test_odd_widths_allowed(self):
        t33 = IntType(33)
        assert t33.mask == (1 << 33) - 1


class TestArrayShape:
    def test_num_elements(self):
        assert ArrayShape((3, 65536)).num_elements == 3 * 65536
        assert ArrayShape().num_elements == 1

    def test_drop_outer(self):
        assert ArrayShape((3, 4)).drop_outer() == ArrayShape((4,))

    def test_scalar_drop_rejected(self):
        with pytest.raises(ValueError):
            ArrayShape().drop_outer()

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            ArrayShape((0,))


def _simple_fn() -> tuple[Function, IRBuilder]:
    fn = Function("f", FunctionKind.KERNEL, [Argument("x", U32)], computation=1)
    b = IRBuilder(fn)
    b.position_at_end(fn.new_block("entry"))
    return fn, b


class TestBuilderAndVerifier:
    def test_diamond_verifies(self):
        fn, b = _simple_fn()
        x = fn.args[0]
        cmp = b.icmp(ICmpPred.UGT, x, Constant(U32, 10))
        then_ = b.new_block("then")
        else_ = b.new_block("else")
        merge = b.new_block("merge")
        b.br(cmp, then_, else_)
        b.position_at_end(then_)
        t = b.add(x, Constant(U32, 1))
        b.jmp(merge)
        b.position_at_end(else_)
        e = b.sub(x, Constant(U32, 1))
        b.jmp(merge)
        b.position_at_end(merge)
        phi = b.phi(U32)
        phi.add_incoming(t, then_)
        phi.add_incoming(e, else_)
        b.ret_action(ActionKind.PASS)
        verify_function(fn)

    def test_unterminated_block_rejected(self):
        fn, b = _simple_fn()
        b.add(fn.args[0], Constant(U32, 1))
        with pytest.raises(IRVerifyError, match="not terminated"):
            verify_function(fn)

    def test_type_mismatch_rejected(self):
        fn, b = _simple_fn()
        bad = BinOp(BinOpKind.ADD, fn.args[0], Constant(U8, 1))
        fn.entry.append(bad)
        fn.entry.append(Ret(Action(ActionKind.DROP)))
        with pytest.raises(IRVerifyError, match="type mismatch"):
            verify_function(fn)

    def test_use_before_def_rejected(self):
        fn, b = _simple_fn()
        add1 = BinOp(BinOpKind.ADD, fn.args[0], fn.args[0])
        add2 = BinOp(BinOpKind.ADD, add1, add1)
        fn.entry.append(add2)  # add2 placed before add1
        fn.entry.append(add1)
        fn.entry.append(Ret(Action(ActionKind.DROP)))
        with pytest.raises(IRVerifyError, match="before definition"):
            verify_function(fn)

    def test_non_dominating_use_rejected(self):
        fn, b = _simple_fn()
        x = fn.args[0]
        cmp = b.icmp(ICmpPred.EQ, x, Constant(U32, 0))
        then_ = b.new_block("then")
        merge = b.new_block("merge")
        b.br(cmp, then_, merge)
        b.position_at_end(then_)
        t = b.add(x, Constant(U32, 1))
        b.jmp(merge)
        b.position_at_end(merge)
        b.add(t, Constant(U32, 1))  # t does not dominate merge
        b.ret_action(ActionKind.PASS)
        with pytest.raises(IRVerifyError, match="non-dominating"):
            verify_function(fn)

    def test_action_requires_target(self):
        with pytest.raises(ValueError):
            Action(ActionKind.SEND_TO_HOST)
        with pytest.raises(ValueError):
            Action(ActionKind.DROP, Constant(U16, 1))

    def test_coerce_widths(self):
        fn, b = _simple_fn()
        x = fn.args[0]
        narrowed = b.coerce(x, U8)
        widened = b.coerce(narrowed, U32)
        same = b.coerce(x, U32)
        assert narrowed.type == U8 and widened.type == U32 and same is x
        b.ret_action(ActionKind.PASS)
        verify_function(fn)


class TestDominators:
    def _diamond(self):
        fn, b = _simple_fn()
        x = fn.args[0]
        cmp = b.icmp(ICmpPred.EQ, x, Constant(U32, 0))
        then_ = b.new_block("then")
        else_ = b.new_block("else")
        merge = b.new_block("merge")
        b.br(cmp, then_, else_)
        for arm in (then_, else_):
            b.position_at_end(arm)
            b.jmp(merge)
        b.position_at_end(merge)
        b.ret_action(ActionKind.PASS)
        return fn, then_, else_, merge

    def test_rpo_starts_at_entry(self):
        fn, *_ = self._diamond()
        order = reverse_postorder(fn)
        assert order[0] is fn.entry and len(order) == 4

    def test_idom_of_merge_is_branch(self):
        fn, then_, else_, merge = self._diamond()
        dt = DominatorTree(fn)
        assert dt.immediate_dominator(merge) is fn.entry
        assert dt.immediate_dominator(then_) is fn.entry

    def test_dominates(self):
        fn, then_, else_, merge = self._diamond()
        dt = DominatorTree(fn)
        assert dt.dominates(fn.entry, merge)
        assert not dt.dominates(then_, merge)
        assert dt.dominates(merge, merge)

    def test_nearest_common_dominator(self):
        fn, then_, else_, merge = self._diamond()
        dt = DominatorTree(fn)
        assert dt.nearest_common_dominator([then_, else_]) is fn.entry

    def test_dominance_frontier_of_arms_is_merge(self):
        fn, then_, else_, merge = self._diamond()
        dt = DominatorTree(fn)
        df = dt.dominance_frontiers()
        assert df[id(then_)] == {id(merge)}
        assert df[id(else_)] == {id(merge)}
        assert df[id(fn.entry)] == set()
