"""Unit tests for the NetCL lexer and preprocessor."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.lexer import Lexer, TokenKind, preprocess


def toks(src, **kw):
    return [t for t in Lexer(src, **kw).tokens if t.kind != TokenKind.EOF]


class TestTokens:
    def test_identifiers_and_keywords(self):
        ts = toks("int foo _net_ _kernel bar2")
        assert [t.kind for t in ts] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
        ]

    def test_decimal_hex_binary_numbers(self):
        ts = toks("42 0x2A 0b101010 7u 9UL")
        assert [t.value for t in ts] == [42, 42, 42, 7, 9]

    def test_char_literals(self):
        ts = toks(r"'+' 'a' '\n' '\0'")
        assert [t.value for t in ts] == [ord("+"), ord("a"), 10, 0]

    def test_true_false_become_numbers(self):
        ts = toks("true false")
        assert [t.value for t in ts] == [1, 0]

    def test_maximal_munch_operators(self):
        ts = toks("a<<=b >>= :: && || ++ <=")
        texts = [t.text for t in ts if t.kind == TokenKind.PUNCT]
        assert texts == ["<<=", ">>=", "::", "&&", "||", "++", "<="]

    def test_line_and_column_tracking(self):
        ts = toks("a\n  b")
        assert (ts[0].line, ts[0].col) == (1, 1)
        assert (ts[1].line, ts[1].col) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            toks("int a = $;")


class TestComments:
    def test_line_comment(self):
        assert [t.text for t in toks("a // comment\n b")] == ["a", "b"]

    def test_block_comment_preserves_lines(self):
        ts = toks("a /* x\n y */ b")
        assert ts[1].line == 2

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            toks('"abc')


class TestPreprocessor:
    def test_object_macro(self):
        ts = toks("#define N 42\nint a[N];")
        assert any(t.value == 42 for t in ts)

    def test_macro_expands_recursively(self):
        ts = toks("#define A B\n#define B 7\nA")
        assert ts[0].value == 7

    def test_recursive_macro_rejected(self):
        with pytest.raises(CompileError):
            toks("#define A A\nA")

    def test_function_like_macro_rejected(self):
        with pytest.raises(CompileError):
            preprocess("#define F(x) x")

    def test_extra_defines_override_ifndef(self):
        src = "#ifndef N\n#define N 2\n#endif\nN"
        assert toks(src)[0].value == 2
        assert toks(src, extra_defines={"N": 9})[0].value == 9

    def test_ifdef_else(self):
        src = "#ifdef X\n1\n#else\n2\n#endif"
        assert toks(src)[0].value == 2
        assert toks(src, extra_defines={"X": 1})[0].value == 1

    def test_unterminated_conditional(self):
        with pytest.raises(CompileError):
            preprocess("#ifndef A\nint x;")

    def test_undef(self):
        src = "#define N 1\n#undef N\n#ifdef N\n1\n#else\n2\n#endif"
        assert toks(src)[0].value == 2

    def test_macro_body_with_expression(self):
        ts = toks("#define M 1 << 4\nM")
        assert [t.text for t in ts] == ["1", "<<", "4"]
