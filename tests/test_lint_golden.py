"""Golden-diagnostics harness for the lint fixtures under ``tests/lint/``.

Each ``.ncl`` fixture annotates expected findings with trailing comments::

    x = t; // expect-warning: NCL001
    C = y; // expect-error: NCL102

The harness lints the fixture and diffs the *exact* set of
``(line, code)`` pairs against the annotations — unexpected diagnostics
fail just as hard as missing ones, keeping fixture drift visible.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import DiagnosticEngine, lint_source
from repro.analysis.diagnostics import CODES, Severity

FIXTURE_DIR = Path(__file__).parent / "lint"
FIXTURES = sorted(FIXTURE_DIR.glob("*.ncl"))

_EXPECT = re.compile(r"//\s*expect-(warning|error):\s*(NCL\d+)")


def parse_expectations(text: str) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _EXPECT.finditer(line):
            expected.add((lineno, match.group(2)))
    return expected


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_golden_diagnostics(fixture):
    text = fixture.read_text()
    expected = parse_expectations(text)
    engine = DiagnosticEngine(source_name=fixture.name)
    lint_source(text, engine=engine, program_name=fixture.stem)
    actual = {(d.line, d.code) for d in engine.diagnostics}

    missing = expected - actual
    unexpected = actual - expected
    detail = engine.render_text()
    assert not missing, f"{fixture.name}: expected but not emitted: {missing}\n{detail}"
    assert not unexpected, f"{fixture.name}: unexpected diagnostics: {unexpected}\n{detail}"


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_annotation_severity_matches_code_table(fixture):
    """expect-warning/expect-error must agree with the code registry."""
    for line in fixture.read_text().splitlines():
        for match in _EXPECT.finditer(line):
            kind, code = match.group(1), match.group(2)
            assert code in CODES, f"{fixture.name}: unknown code {code}"
            expected = Severity.ERROR if kind == "error" else Severity.WARNING
            assert CODES[code][0] == expected, (
                f"{fixture.name}: {code} is a {CODES[code][0].value}, "
                f"annotated expect-{kind}"
            )


def test_fixture_coverage():
    """The fixture corpus exercises every lint family at least once."""
    seen = set()
    for fixture in FIXTURES:
        seen.update(code for _, code in parse_expectations(fixture.read_text()))
    assert {
        "NCL001",
        "NCL002",
        "NCL004",
        "NCL005",
        "NCL006",
        "NCL007",
        "NCL008",
        "NCL009",
        "NCL010",
        "NCL102",
    } <= seen


def test_clean_fixture_is_clean():
    text = (FIXTURE_DIR / "clean.ncl").read_text()
    engine = DiagnosticEngine()
    lint_source(text, engine=engine)
    assert engine.diagnostics == []
