"""AST -> IR lowering: unrolling, inlining, actions, argument ABI."""

import pytest

from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.ir.instructions import ActionKind, Call, Intrinsic
from repro.lang import analyze, lower_to_ir, parse_source
from repro.lang.errors import CompileError


def lower(src):
    return lower_to_ir(analyze(parse_source(src)))


def run(src, fields, device_id=0):
    mod = lower(src)
    fn = mod.kernels()[0]
    msg = KernelMessage(dict(fields))
    out = IRInterpreter(mod, GlobalState(), device_id=device_id).run_kernel(fn, msg)
    return out, msg, mod


class TestLoopUnrolling:
    def test_simple_unroll(self):
        out, msg, _ = run(
            "_kernel(1) void k(unsigned &s) { s = 0; for (auto i = 0; i < 5; ++i) s = s + i; }",
            {"s": 0},
        )
        assert msg.fields["s"] == 10

    def test_macro_bound_unroll(self):
        out, msg, _ = run(
            "#define N 4\n_kernel(1) void k(unsigned v[N]) { for (auto i = 0; i < N; ++i) v[i] = i * i; }",
            {"v": [0] * 4},
        )
        assert msg.fields["v"] == [0, 1, 4, 9]

    def test_nested_unroll_with_outer_var_in_bound(self):
        src = (
            "_kernel(1) void k(unsigned &s) { s = 0;\n"
            "  for (auto i = 0; i < 3; ++i)\n"
            "    for (auto j = 0; j < i + 1; ++j) s = s + 1; }"
        )
        out, msg, _ = run(src, {"s": 0})
        assert msg.fields["s"] == 1 + 2 + 3

    def test_step_and_downward_loops(self):
        out, msg, _ = run(
            "_kernel(1) void k(unsigned &s) { s = 0; for (auto i = 10; i > 0; i -= 3) s = s + i; }",
            {"s": 0},
        )
        assert msg.fields["s"] == 10 + 7 + 4 + 1

    def test_dynamic_bound_rejected(self):
        with pytest.raises(CompileError, match="fully-unrollable"):
            lower("_kernel(1) void k(unsigned n, unsigned &s) { for (auto i = 0; i < n; ++i) s = i; }")

    def test_unroll_limit(self):
        with pytest.raises(CompileError, match="unroll limit"):
            lower("_kernel(1) void k(unsigned &s) { for (auto i = 0; i < 100000; ++i) s = i; }")

    def test_assignment_to_induction_var_rejected(self):
        with pytest.raises(CompileError, match="unrolled loop variable"):
            lower("_kernel(1) void k() { for (auto i = 0; i < 4; ++i) i = 0; }")

    def test_no_loop_instructions_remain(self):
        mod = lower(
            "_kernel(1) void k(unsigned v[4]) { for (auto i = 0; i < 4; ++i) v[i] = 1; }"
        )
        from repro.passes import check_dag

        check_dag(mod.kernels()[0])  # no back edges exist at all


class TestNetFunctionInlining:
    def test_value_and_reference_args(self):
        src = (
            "_net_ void helper(unsigned x, unsigned &out) { out = x * 2; }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { helper(a + 1, r); }"
        )
        out, msg, _ = run(src, {"a": 20, "r": 0})
        assert msg.fields["r"] == 42

    def test_return_value(self):
        src = (
            "_net_ unsigned sq(unsigned x) { return x * x; }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { r = sq(a) + sq(2); }"
        )
        out, msg, _ = run(src, {"a": 3, "r": 0})
        assert msg.fields["r"] == 13

    def test_early_returns_in_callee(self):
        src = (
            "_net_ unsigned clamp(unsigned x) {\n"
            "  if (x > 100) return 100;\n"
            "  if (x < 10) return 10;\n"
            "  return x; }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { r = clamp(a); }"
        )
        for a, expected in ((5, 10), (50, 50), (500, 100)):
            out, msg, _ = run(src, {"a": a, "r": 0})
            assert msg.fields["r"] == expected, a

    def test_array_argument_aliases_message(self):
        src = (
            "_net_ void dbl(unsigned *v) { for (auto i = 0; i < 3; ++i) v[i] = v[i] * 2; }\n"
            "_kernel(1) void k(unsigned _spec(3) *v) { dbl(v); }"
        )
        out, msg, _ = run(src, {"v": [1, 2, 3]})
        assert msg.fields["v"] == [2, 4, 6]

    def test_nested_inlining(self):
        src = (
            "_net_ unsigned inc(unsigned x) { return x + 1; }\n"
            "_net_ unsigned inc2(unsigned x) { return inc(inc(x)); }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { r = inc2(a); }"
        )
        out, msg, _ = run(src, {"a": 40, "r": 0})
        assert msg.fields["r"] == 42

    def test_action_return_inside_netfn_ends_kernel(self):
        src = (
            "_net_ void bail(unsigned x) { if (x == 0) return ncl::drop(); }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { bail(a); r = 1; }"
        )
        out, msg, _ = run(src, {"a": 0, "r": 0})
        assert out.kind == ActionKind.DROP and msg.fields["r"] == 0
        out2, msg2, _ = run(src, {"a": 5, "r": 0})
        assert out2.kind == ActionKind.PASS and msg2.fields["r"] == 1

    def test_no_call_instructions_remain(self):
        src = (
            "_net_ unsigned f(unsigned x) { return x; }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { r = f(a); }"
        )
        mod = lower(src)
        assert not any(isinstance(i, Call) for i in mod.kernels()[0].instructions())

    def test_callee_scope_isolated_from_caller(self):
        src = (
            "_net_ unsigned f(unsigned x) { unsigned t = x + 1; return t; }\n"
            "_kernel(1) void k(unsigned a, unsigned &r) { unsigned t = 100; r = f(a) + t; }"
        )
        out, msg, _ = run(src, {"a": 1, "r": 0})
        assert msg.fields["r"] == 102


class TestActions:
    def test_action_outside_return_rejected(self):
        with pytest.raises(CompileError, match="return statements"):
            lower("_kernel(1) void k() { ncl::drop(); }")

    def test_ternary_action_return(self):
        src = "_kernel(1) void k(unsigned a) { return a > 5 ? ncl::drop() : ncl::reflect(); }"
        out, _, _ = run(src, {"a": 9})
        assert out.kind == ActionKind.DROP
        out2, _, _ = run(src, {"a": 1})
        assert out2.kind == ActionKind.REFLECT

    def test_plain_return_is_pass(self):
        out, _, _ = run("_kernel(1) void k(unsigned a) { if (a) return; }", {"a": 1})
        assert out.kind == ActionKind.PASS

    def test_target_actions_take_expressions(self):
        src = "_kernel(1) void k(unsigned d) { return ncl::send_to_device(d + 1); }"
        out, _, _ = run(src, {"d": 6})
        assert out.kind == ActionKind.SEND_TO_DEVICE and out.target == 7

    def test_multicast_requires_argument(self):
        with pytest.raises(CompileError, match="exactly one argument"):
            lower("_kernel(1) void k() { return ncl::multicast(); }")


class TestArgumentAbi:
    def test_specifications_reported(self):
        mod = lower(
            "_kernel(4) void d(int x, int y[2], int _spec(3) *z) { }"
        )
        fn = mod.kernels()[0]
        assert fn.specification() == ((1, "i32"), (2, "i32"), (3, "i32"))

    def test_msg_builtin_fields(self):
        src = "_kernel(1) void k(unsigned &a, unsigned &b) { a = msg.src; b = msg.to; }"
        mod = lower(src)
        fn = mod.kernels()[0]
        msg = KernelMessage({"a": 0, "b": 0, "__src": 11, "__dst": 2, "__from": 3, "__to": 4})
        IRInterpreter(mod, GlobalState()).run_kernel(fn, msg)
        assert msg.fields["a"] == 11 and msg.fields["b"] == 4

    def test_device_id_spmd_branching(self):
        src = (
            "_kernel(1) void k(unsigned &r) {\n"
            "  if (device.id == 1) r = 100; else r = 200; }"
        )
        for dev, expected in ((1, 100), (7, 200)):
            out, msg, _ = run(src, {"r": 0}, device_id=dev)
            assert msg.fields["r"] == expected

    def test_local_array_initializer(self):
        src = (
            "_kernel(1) void k(unsigned &r) {\n"
            "  unsigned lut[4] = {10, 20, 30, 40};\n"
            "  r = lut[2]; }"
        )
        out, msg, _ = run(src, {"r": 0})
        assert msg.fields["r"] == 30

    def test_atomics_with_explicit_and_implicit_address(self):
        # Fig. 7 passes Agg[i][idx] without '&'; both forms are accepted.
        src = (
            "_net_ unsigned m[4];\n"
            "_kernel(1) void k(unsigned &a, unsigned &b) {\n"
            "  a = ncl::atomic_add_new(&m[0], 5);\n"
            "  b = ncl::atomic_add_new(m[1], 7); }"
        )
        out, msg, _ = run(src, {"a": 0, "b": 0})
        assert msg.fields["a"] == 5 and msg.fields["b"] == 7

    def test_atomic_on_local_rejected(self):
        with pytest.raises(CompileError, match="global device memory"):
            lower("_kernel(1) void k() { unsigned x; ncl::atomic_inc(&x); }")

    def test_lookup_on_register_memory_rejected(self):
        with pytest.raises(CompileError, match="not _lookup_"):
            lower("_net_ unsigned m[4];\n_kernel(1) void k(unsigned x) { ncl::lookup(m, x); }")

    def test_indexing_lookup_memory_rejected(self):
        with pytest.raises(CompileError, match="searched, not indexed"):
            lower(
                "_net_ _lookup_ unsigned t[] = {1,2};\n"
                "_kernel(1) void k(unsigned &r) { r = t[0]; }"
            )

    def test_set_lookup_three_arg_rejected(self):
        with pytest.raises(CompileError, match="no value"):
            lower(
                "_net_ _lookup_ unsigned t[] = {1,2};\n"
                "_kernel(1) void k(unsigned x, unsigned &v) { ncl::lookup(t, x, v); }"
            )

    def test_rand_requires_template_type(self):
        with pytest.raises(CompileError, match="template argument"):
            lower("_kernel(1) void k(unsigned &r) { r = ncl::rand(); }")
        mod = lower("_kernel(1) void k(unsigned &r) { r = ncl::rand<u8>(); }")
        intr = [i for i in mod.kernels()[0].instructions() if isinstance(i, Intrinsic)]
        assert intr and intr[0].type.width == 8
