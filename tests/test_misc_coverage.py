"""Remaining coverage: CLI dump, LoC fractions, verifier diagnostics,
netsim statistics, IR dump format."""

import pytest

from repro.core import compile_netcl
from repro.ir import IRVerifyError, verify_function
from repro.p4.loc import LineCategory, breakdown_fractions, classify_lines, count_loc
from tests.conftest import MINI_KERNEL


class TestLocTools:
    SAMPLE = """
// comment-only line

header h_t {
    bit<8> f;
}

parser P(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.h);
        transition accept;
    }
}

control C(inout headers_t hdr) {
    action set_f() {
        hdr.h.f = 1;
    }
    table t {
        key = { hdr.h.f : exact; }
        actions = { set_f; }
    }
    apply {
        t.apply();
    }
}
"""

    def test_categories_on_sample(self):
        counts = classify_lines(self.SAMPLE)
        assert counts[LineCategory.HEADERS] == 3
        assert counts[LineCategory.PARSER] == 6
        assert counts[LineCategory.ACTIONS] == 3
        assert counts[LineCategory.TABLES] == 4
        assert counts[LineCategory.CONTROL] >= 3

    def test_fractions_sum_to_one(self):
        frac = breakdown_fractions(classify_lines(self.SAMPLE))
        per_cat = sum(frac[c.value] for c in LineCategory)
        assert per_cat == pytest.approx(1.0)

    def test_count_matches_classifier_total(self):
        counts = classify_lines(self.SAMPLE)
        assert sum(counts.values()) == count_loc(self.SAMPLE)


class TestModuleDump:
    def test_dump_contains_globals_and_blocks(self, fig4_module):
        text = fig4_module.dump()
        assert "@cms: managed u32[3][65536]" in text
        assert "_kernel(1) _at(1) query" in text
        assert "entry:" in text

    def test_dump_roundtrips_through_passes(self, fig4_module):
        from repro.passes import PassOptions, run_default_pipeline

        run_default_pipeline(fig4_module, PassOptions())
        text = fig4_module.dump()
        assert "cms.part0" in text  # partitioned globals visible


class TestVerifierDiagnostics:
    def test_phi_predecessor_mismatch_detected(self):
        from repro.ir import IRBuilder, U32
        from repro.ir.instructions import ActionKind, Constant
        from repro.ir.module import Argument, Function, FunctionKind

        fn = Function("f", FunctionKind.KERNEL, [Argument("x", U32)], computation=1)
        b = IRBuilder(fn)
        entry = fn.new_block("entry")
        nxt = fn.new_block("next")
        b.position_at_end(entry)
        b.jmp(nxt)
        b.position_at_end(nxt)
        phi = b.phi(U32)
        phi.add_incoming(Constant(U32, 1), nxt)  # wrong block
        b.ret_action(ActionKind.PASS)
        with pytest.raises(IRVerifyError, match="does not match predecessors"):
            verify_function(fn)


class TestNetsimStats:
    def test_switch_and_network_counters(self):
        from repro.netsim import DEVICE, HOST, Network
        from repro.runtime import KernelSpec, Message, NetCLDevice

        cp = compile_netcl(MINI_KERNEL, 1, program_name="mini")
        dev = NetCLDevice(1, cp.module, cp.kernels())
        net = Network()
        h = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        for i in range(5):
            h.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [i, 1, None])
        net.sim.run()
        assert dev.packets_seen == 5 and dev.packets_computed == 5
        assert net.sim.events_processed > 10
        assert net.sim.pending == 0


class TestCliDumpIr:
    def test_dump_ir_flag(self, tmp_path, capsys):
        from repro.core.cli import main

        src = tmp_path / "p.ncl"
        src.write_text(MINI_KERNEL)
        rc = main([str(src), "--dump-ir", "-o", str(tmp_path / "o.p4")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counter" in out and "atomic" in out
