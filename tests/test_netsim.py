"""The discrete-event network simulator."""

import pytest

from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network, Simulator
from repro.runtime import KernelSpec, Message, NetCLDevice


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(30, lambda: log.append("c"))
        sim.at(10, lambda: log.append("a"))
        sim.at(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"] and sim.now_ns == 30

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        log = []
        for tag in "xyz":
            sim.at(5, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_cancellation(self):
        sim = Simulator()
        log = []
        ev = sim.at(10, lambda: log.append("no"))
        ev.cancel()
        sim.run()
        assert not log

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append(1))
        sim.at(100, lambda: log.append(2))
        sim.run(until_ns=50)
        assert log == [1] and sim.now_ns == 50
        sim.run()
        assert log == [1, 2]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(sim.now_ns)
            sim.after(7, lambda: log.append(sim.now_ns))

        sim.at(3, outer)
        sim.run()
        assert log == [3, 10]


ECHO = "_kernel(1) void k(unsigned x) { return ncl::reflect(); }"
PASS = "_kernel(1) void k(unsigned x) { }"


def _device(src=ECHO, dev_id=1):
    cp = compile_netcl(src, dev_id)
    return NetCLDevice(dev_id, cp.module, cp.kernels()), KernelSpec.from_kernel(cp.kernels()[0])


class TestNetwork:
    def test_link_latency_accumulates(self):
        dev, spec = _device(PASS)
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        h1.tx_overhead_ns = h2.rx_overhead_ns = 0
        net.add_switch(dev, processing_ns=100)
        net.link(HOST(1), DEVICE(1), Link(latency_ns=1000, bandwidth_gbps=1000))
        net.link(HOST(2), DEVICE(1), Link(latency_ns=2000, bandwidth_gbps=1000))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert len(h2.received) == 1
        t, p = h2.received[0]
        # 1000 + serialization + 100 processing + 2000 + serialization
        assert t >= 3100

    def test_loss_injection(self):
        dev, spec = _device(PASS)
        net = Network(seed=4)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1), Link(loss_probability=1.0))
        net.link(HOST(2), DEVICE(1))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert not h2.received and net.packets_lost == 1

    def test_multihop_routing_through_transit_switch(self):
        # h1 - d1 - d2 - h2 with computation at d2 only: d1 is a no-op.
        cp1 = compile_netcl(PASS, 1)
        cp2 = compile_netcl("_kernel(1) _at(2) void k(unsigned x) { }", 2)
        d1 = NetCLDevice(1, cp1.module, [])  # no kernels at d1
        d2 = NetCLDevice(2, cp2.module, cp2.kernels())
        spec = KernelSpec.from_kernel(cp2.kernels()[0])
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(d1)
        net.add_switch(d2)
        net.link(HOST(1), DEVICE(1))
        net.link(DEVICE(1), DEVICE(2))
        net.link(DEVICE(2), HOST(2))
        h1.send_message(Message(src=1, dst=2, comp=1, to=2), spec, [9])
        net.sim.run()
        assert len(h2.received) == 1
        assert d1.packets_computed == 0 and d2.packets_computed == 1
        assert d1.packets_seen == 1

    def test_multicast_to_hosts(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        hosts = [net.add_host(i) for i in (1, 2, 3)]
        net.add_switch(dev)
        for i in (1, 2, 3):
            net.link(HOST(i), DEVICE(1))
        net.add_multicast_group(3, [HOST(1), HOST(2), HOST(3)])
        hosts[0].send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        assert all(len(h.received) == 1 for h in hosts)

    def test_drop_action_counts(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::drop(); }"
        dev, spec = _device(src)
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.packets_dropped == 1

    def test_unroutable_packet_dropped(self):
        dev, spec = _device(PASS)
        net = Network()
        h1 = net.add_host(1)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        # destination host 9 does not exist
        h1.send_message(Message(src=1, dst=9, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.packets_dropped == 1

    def test_bandwidth_serialization_delay(self):
        dev, spec = _device(PASS)
        slow = Link(latency_ns=0, bandwidth_gbps=1.0)  # 1 Gbps
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        h1.tx_overhead_ns = h2.rx_overhead_ns = 0
        net.add_switch(dev, processing_ns=0)
        net.link(HOST(1), DEVICE(1), slow)
        net.link(HOST(2), DEVICE(1), slow)
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        t, p = h2.received[0]
        expected_ser = 2 * p.size_bytes * 8  # two hops at 1 bit/ns
        assert t >= expected_ser


class TestLossAndMulticastTelemetry:
    """Seeded loss injection and multicast, cross-checked against the
    telemetry layer's counters and traces."""

    def test_seeded_loss_counters_match_observed_deliveries(self):
        dev, spec = _device(PASS)
        net = Network(seed=7)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1), Link(loss_probability=0.3))
        net.link(HOST(2), DEVICE(1), Link(loss_probability=0.3))
        sent = 200
        for i in range(sent):
            h1.send_message(
                Message(src=1, dst=2, comp=1, to=1), spec, [i], delay_ns=i * 10_000
            )
        net.sim.run()
        delivered = len(h2.received)
        assert 0 < delivered < sent  # loss actually happened, but not total
        # conservation: every packet was either delivered or counted lost
        assert delivered + net.packets_lost == sent
        # the per-link loss counters decompose the total
        per_link = net.metrics.total("link.lost.")
        assert per_link == net.packets_lost == net.metrics.value("net.lost")
        # deliveries seen by the far link's tx counter
        assert net.metrics.value("link.tx_packets.d1-h2") == delivered

    def test_lossless_run_has_zero_loss_counters(self):
        dev, spec = _device(PASS)
        net = Network(seed=7)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        for i in range(20):
            h1.send_message(
                Message(src=1, dst=2, comp=1, to=1), spec, [i], delay_ns=i * 1000
            )
        net.sim.run()
        assert len(h2.received) == 20
        assert net.packets_lost == 0 and net.packets_dropped == 0
        assert net.metrics.total("link.lost.") == 0

    def test_multicast_per_replica_trace_hops(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        tracer = net.enable_tracing()
        hosts = [net.add_host(i) for i in (1, 2, 3)]
        net.add_switch(dev)
        for i in (1, 2, 3):
            net.link(HOST(i), DEVICE(1))
        net.add_multicast_group(3, [HOST(1), HOST(2), HOST(3)])
        pkt = hosts[0].send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        assert all(len(h.received) == 1 for h in hosts)
        parent = tracer.trace_of(pkt)
        assert parent is not None and parent.path[:2] == ["h1", "d1"]
        replicas = tracer.replicas_of(parent.trace_id)
        assert len(replicas) == 3
        # each replica carries its own hop record ending at its host
        ends = sorted(r.path[-1] for r in replicas)
        assert ends == ["h1", "h2", "h3"]
        for r in replicas:
            assert r.parent == parent.trace_id
            assert [h.kind for h in r.hops][:1] == ["replicate"]
            assert r.hops[-1].kind == "deliver"


class TestSchedulerApi:
    """The (fn, args) event form and fractional-delay rounding."""

    def test_at_and_after_accept_args(self):
        sim = Simulator()
        log = []
        sim.at(10, log.append, "a")
        sim.after(20, log.append, "b")
        sim.run()
        assert log == ["a", "b"]

    def test_after_ceils_fractional_delays(self):
        sim = Simulator()
        # A sub-ns float delay must not become an instantaneous event.
        assert sim.after(0.5, lambda: None).time_ns == 1
        assert sim.after(1.2, lambda: None).time_ns == 2
        assert sim.after(3.0, lambda: None).time_ns == 3
        assert sim.after(0, lambda: None).time_ns == 0
        assert sim.after(7, lambda: None).time_ns == 7

    def test_compaction_during_run_keeps_new_events(self):
        # Cancels fired from inside callbacks can trigger a mid-run heap
        # compaction; events scheduled afterwards must still run.
        sim = Simulator()
        log = []
        stale = [sim.at(1000, log.append, "stale") for _ in range(200)]

        def churn():
            for ev in stale:
                ev.cancel()
            sim.after(5, log.append, "late")

        sim.at(1, churn)
        sim.run()
        assert log == ["late"] and sim.compactions >= 1


class TestLinkStateBugfixes:
    """Regression tests for the ISSUE 7 link-state satellite fixes."""

    def _redundant_net(self):
        cp1 = compile_netcl(PASS, 1)
        cp2 = compile_netcl("_kernel(1) _at(2) void k(unsigned x) { }", 2)
        net = Network()
        net.add_host(1)
        net.add_host(2)
        net.add_switch(NetCLDevice(1, cp1.module, cp1.kernels()))
        net.add_switch(NetCLDevice(2, cp2.module, cp2.kernels()))
        for h in (1, 2):
            for d in (1, 2):
                net.link(HOST(h), DEVICE(d))
        return net

    def test_restart_does_not_resurrect_admin_downed_link(self):
        # flap -> crash -> restart: the flapped link must stay down.
        net = self._redundant_net()
        net.set_link_up(HOST(1), DEVICE(1), False)
        net.crash_switch(1)
        net.restart_switch(1)
        assert not net.graph.has_edge(HOST(1), DEVICE(1))
        assert net.graph.has_edge(HOST(2), DEVICE(1))
        # explicitly re-enabling brings it back
        net.set_link_up(HOST(1), DEVICE(1), True)
        assert net.graph.has_edge(HOST(1), DEVICE(1))

    def test_admin_down_link_carries_no_traffic_after_restart(self):
        dev, spec = _device(PASS)
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        net.set_link_up(HOST(2), DEVICE(1), False)
        net.crash_switch(1)
        net.restart_switch(1)
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        # the packet reaches d1 but has no path on to h2
        assert not h2.received
        assert net.metrics.value("net.drop.no_route") >= 1

    def test_multicast_group_members_must_be_adjacent(self):
        net = Network()
        net.add_host(1)
        isolated = net.add_host(2)  # in the graph, but no links
        dev, _ = _device(PASS)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        with pytest.raises(ValueError, match="not an.*adjacent"):
            net.add_multicast_group(9, [HOST(1), HOST(7)])  # unknown node
        with pytest.raises(ValueError, match="h2"):
            net.add_multicast_group(9, [HOST(1), isolated.key])
        net.add_multicast_group(9, [HOST(1)])  # linked member is fine
        assert net.multicast_groups[9] == [HOST(1)]


class TestDecisionDropAccounting:
    """Non-DROP decisions can no longer lose packets invisibly."""

    def test_null_packet_decision_is_counted(self):
        from repro.runtime.device import ForwardDecision, ForwardKind

        dev, _ = _device(PASS)
        net = Network()
        net.add_host(1)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        before = net.packets_dropped
        net.execute_decision(DEVICE(1), ForwardDecision(ForwardKind.TO_HOST, 1, None))
        assert net.metrics.value("net.drop.null_decision") == 1
        assert net.packets_dropped == before + 1

    def test_multicast_to_unknown_group_is_counted_and_traced(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(42); }"
        dev, spec = _device(src)
        net = Network()
        tracer = net.enable_tracing()
        h1 = net.add_host(1)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        # group 42 is never registered
        h1.send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.metrics.value("net.drop.empty_group") == 1
        assert net.packets_dropped >= 1
        assert not h1.received
        # the drop is visible on some trace of this packet's lineage
        kinds = [
            (h.kind, h.detail)
            for t in tracer.traces.values()
            for h in t.hops
        ]
        assert any(k == "drop" and "42" in d for k, d in kinds)


class TestIncrementalRouting:
    """Per-source route caching with selective invalidation."""

    def _ring_net(self):
        # h1 - d1 - d2 and h3 - d2 (cycle via d1-d2 and h3's extra edge):
        #   h1-d1, h2-d1, h3-d1, d1-d2, h3-d2
        cp1 = compile_netcl(PASS, 1)
        cp2 = compile_netcl("_kernel(1) _at(2) void k(unsigned x) { }", 2)
        net = Network()
        for h in (1, 2, 3):
            net.add_host(h)
        net.add_switch(NetCLDevice(1, cp1.module, cp1.kernels()))
        net.add_switch(NetCLDevice(2, cp2.module, cp2.kernels()))
        for h in (1, 2, 3):
            net.link(HOST(h), DEVICE(1))
        net.link(DEVICE(1), DEVICE(2))
        net.link(HOST(3), DEVICE(2))
        return net

    def test_tables_fill_lazily_per_source(self):
        dev, spec = _device(PASS)
        net = Network()
        h1, _ = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        assert net.route_rebuilds == 0
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        # only the sources that actually forwarded built tables
        assert set(net._routes) == {HOST(1), DEVICE(1)}
        assert net.route_rebuilds == 2

    def test_removing_non_tree_edge_keeps_cached_routes(self):
        net = self._ring_net()
        spec = KernelSpec.from_kernel(compile_netcl(PASS, 1).kernels()[0])
        net.hosts[1].send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        rebuilds = net.route_rebuilds
        assert HOST(1) in net._routes
        # h3-d2 is not on h1's (or d1's) shortest-path tree: d2 is closer
        # through d1.  Removing it must not discard any cached table.
        net.remove_link(HOST(3), DEVICE(2))
        assert net.route_invalidations == 0
        assert HOST(1) in net._routes and DEVICE(1) in net._routes
        # ... and traffic keeps flowing without a rebuild
        net.hosts[1].send_message(Message(src=1, dst=2, comp=1, to=1), spec, [6])
        net.sim.run()
        assert len(net.hosts[2].received) == 2
        assert net.route_rebuilds == rebuilds

    def test_removing_tree_edge_invalidates_only_affected_sources(self):
        net = self._ring_net()
        spec = KernelSpec.from_kernel(compile_netcl(PASS, 1).kernels()[0])
        net.hosts[1].send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert HOST(1) in net._routes and DEVICE(1) in net._routes
        # d1-d2 is on every cached tree (it is the only way d2 is reached
        # at distance 2); removing it discards exactly those tables.
        net.remove_link(DEVICE(1), DEVICE(2))
        assert net.route_invalidations == 2
        assert HOST(1) not in net._routes

    def test_link_addition_clears_all_cached_routes(self):
        net = self._ring_net()
        spec = KernelSpec.from_kernel(compile_netcl(PASS, 1).kernels()[0])
        net.hosts[1].send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert net._routes
        net.add_host(9)
        net.link(HOST(9), DEVICE(1))  # a new edge can shorten paths
        assert not net._routes


class TestPacketPool:
    """Multicast replicas that die in-network are recycled."""

    def test_replicas_dropped_on_lossy_links_are_reused(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_host(3)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1), Link(loss_probability=1.0))
        net.link(HOST(3), DEVICE(1), Link(loss_probability=1.0))
        net.add_multicast_group(3, [HOST(1), HOST(2), HOST(3)])
        for i in range(3):
            h1.send_message(
                Message(src=1, dst=1, comp=1, to=1), spec, [i], delay_ns=i * 100_000
            )
        net.sim.run()
        pool = net.packet_pool
        # replicas toward h2/h3 all died on the wire and were recycled
        assert pool.misses > 0 and pool.hits > 0
        assert pool.free > 0
        assert net.packets_lost == 6

    def test_delivered_replicas_leave_the_pool(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        h1 = net.add_host(1)
        h2 = net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        net.add_multicast_group(3, [HOST(1), HOST(2)])
        h1.send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        # both replicas reached applications: nothing may be recycled
        assert net.packet_pool.free == 0
        assert len(h1.received) == 1 and len(h2.received) == 1
        # delivered payloads stay intact after further traffic
        first = h2.received[0][1].data
        h1.send_message(Message(src=1, dst=1, comp=1, to=1), spec, [8])
        net.sim.run()
        assert h2.received[0][1].data == first
