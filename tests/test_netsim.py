"""The discrete-event network simulator."""

import pytest

from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network, Simulator
from repro.runtime import KernelSpec, Message, NetCLDevice


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(30, lambda: log.append("c"))
        sim.at(10, lambda: log.append("a"))
        sim.at(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"] and sim.now_ns == 30

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        log = []
        for tag in "xyz":
            sim.at(5, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_cancellation(self):
        sim = Simulator()
        log = []
        ev = sim.at(10, lambda: log.append("no"))
        ev.cancel()
        sim.run()
        assert not log

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append(1))
        sim.at(100, lambda: log.append(2))
        sim.run(until_ns=50)
        assert log == [1] and sim.now_ns == 50
        sim.run()
        assert log == [1, 2]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(sim.now_ns)
            sim.after(7, lambda: log.append(sim.now_ns))

        sim.at(3, outer)
        sim.run()
        assert log == [3, 10]


ECHO = "_kernel(1) void k(unsigned x) { return ncl::reflect(); }"
PASS = "_kernel(1) void k(unsigned x) { }"


def _device(src=ECHO, dev_id=1):
    cp = compile_netcl(src, dev_id)
    return NetCLDevice(dev_id, cp.module, cp.kernels()), KernelSpec.from_kernel(cp.kernels()[0])


class TestNetwork:
    def test_link_latency_accumulates(self):
        dev, spec = _device(PASS)
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        h1.tx_overhead_ns = h2.rx_overhead_ns = 0
        net.add_switch(dev, processing_ns=100)
        net.link(HOST(1), DEVICE(1), Link(latency_ns=1000, bandwidth_gbps=1000))
        net.link(HOST(2), DEVICE(1), Link(latency_ns=2000, bandwidth_gbps=1000))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert len(h2.received) == 1
        t, p = h2.received[0]
        # 1000 + serialization + 100 processing + 2000 + serialization
        assert t >= 3100

    def test_loss_injection(self):
        dev, spec = _device(PASS)
        net = Network(seed=4)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1), Link(loss_probability=1.0))
        net.link(HOST(2), DEVICE(1))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert not h2.received and net.packets_lost == 1

    def test_multihop_routing_through_transit_switch(self):
        # h1 - d1 - d2 - h2 with computation at d2 only: d1 is a no-op.
        cp1 = compile_netcl(PASS, 1)
        cp2 = compile_netcl("_kernel(1) _at(2) void k(unsigned x) { }", 2)
        d1 = NetCLDevice(1, cp1.module, [])  # no kernels at d1
        d2 = NetCLDevice(2, cp2.module, cp2.kernels())
        spec = KernelSpec.from_kernel(cp2.kernels()[0])
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(d1)
        net.add_switch(d2)
        net.link(HOST(1), DEVICE(1))
        net.link(DEVICE(1), DEVICE(2))
        net.link(DEVICE(2), HOST(2))
        h1.send_message(Message(src=1, dst=2, comp=1, to=2), spec, [9])
        net.sim.run()
        assert len(h2.received) == 1
        assert d1.packets_computed == 0 and d2.packets_computed == 1
        assert d1.packets_seen == 1

    def test_multicast_to_hosts(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        hosts = [net.add_host(i) for i in (1, 2, 3)]
        net.add_switch(dev)
        for i in (1, 2, 3):
            net.link(HOST(i), DEVICE(1))
        net.add_multicast_group(3, [HOST(1), HOST(2), HOST(3)])
        hosts[0].send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        assert all(len(h.received) == 1 for h in hosts)

    def test_drop_action_counts(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::drop(); }"
        dev, spec = _device(src)
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.packets_dropped == 1

    def test_unroutable_packet_dropped(self):
        dev, spec = _device(PASS)
        net = Network()
        h1 = net.add_host(1)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        # destination host 9 does not exist
        h1.send_message(Message(src=1, dst=9, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.packets_dropped == 1

    def test_bandwidth_serialization_delay(self):
        dev, spec = _device(PASS)
        slow = Link(latency_ns=0, bandwidth_gbps=1.0)  # 1 Gbps
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        h1.tx_overhead_ns = h2.rx_overhead_ns = 0
        net.add_switch(dev, processing_ns=0)
        net.link(HOST(1), DEVICE(1), slow)
        net.link(HOST(2), DEVICE(1), slow)
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        t, p = h2.received[0]
        expected_ser = 2 * p.size_bytes * 8  # two hops at 1 bit/ns
        assert t >= expected_ser


class TestLossAndMulticastTelemetry:
    """Seeded loss injection and multicast, cross-checked against the
    telemetry layer's counters and traces."""

    def test_seeded_loss_counters_match_observed_deliveries(self):
        dev, spec = _device(PASS)
        net = Network(seed=7)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1), Link(loss_probability=0.3))
        net.link(HOST(2), DEVICE(1), Link(loss_probability=0.3))
        sent = 200
        for i in range(sent):
            h1.send_message(
                Message(src=1, dst=2, comp=1, to=1), spec, [i], delay_ns=i * 10_000
            )
        net.sim.run()
        delivered = len(h2.received)
        assert 0 < delivered < sent  # loss actually happened, but not total
        # conservation: every packet was either delivered or counted lost
        assert delivered + net.packets_lost == sent
        # the per-link loss counters decompose the total
        per_link = net.metrics.total("link.lost.")
        assert per_link == net.packets_lost == net.metrics.value("net.lost")
        # deliveries seen by the far link's tx counter
        assert net.metrics.value("link.tx_packets.d1-h2") == delivered

    def test_lossless_run_has_zero_loss_counters(self):
        dev, spec = _device(PASS)
        net = Network(seed=7)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        for i in range(20):
            h1.send_message(
                Message(src=1, dst=2, comp=1, to=1), spec, [i], delay_ns=i * 1000
            )
        net.sim.run()
        assert len(h2.received) == 20
        assert net.packets_lost == 0 and net.packets_dropped == 0
        assert net.metrics.total("link.lost.") == 0

    def test_multicast_per_replica_trace_hops(self):
        src = "_kernel(1) void k(unsigned x) { return ncl::multicast(3); }"
        dev, spec = _device(src)
        net = Network()
        tracer = net.enable_tracing()
        hosts = [net.add_host(i) for i in (1, 2, 3)]
        net.add_switch(dev)
        for i in (1, 2, 3):
            net.link(HOST(i), DEVICE(1))
        net.add_multicast_group(3, [HOST(1), HOST(2), HOST(3)])
        pkt = hosts[0].send_message(Message(src=1, dst=1, comp=1, to=1), spec, [7])
        net.sim.run()
        assert all(len(h.received) == 1 for h in hosts)
        parent = tracer.trace_of(pkt)
        assert parent is not None and parent.path[:2] == ["h1", "d1"]
        replicas = tracer.replicas_of(parent.trace_id)
        assert len(replicas) == 3
        # each replica carries its own hop record ending at its host
        ends = sorted(r.path[-1] for r in replicas)
        assert ends == ["h1", "h2", "h3"]
        for r in replicas:
            assert r.parent == parent.trace_id
            assert [h.kind for h in r.hops][:1] == ["replicate"]
            assert r.hops[-1].kind == "deliver"
