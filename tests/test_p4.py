"""The P4-16 subset frontend, interpreter, resources, and LoC tools."""

import pytest

from repro.apps import P4_SOURCES, p4_source
from repro.p4 import (
    P4Interpreter,
    P4NetCLSwitchDevice,
    P4RuntimeError,
    classify_lines,
    count_loc,
    LineCategory,
    parse_p4,
    p4_to_pipeline_spec,
)
from repro.p4.loc import breakdown_fractions
from repro.p4.parser import P4ParseError
from repro.runtime.message import NetCLPacket

MINI = """
const bit<16> PORT = 9000;

header simple_t {
    bit<8>  op;
    bit<16> value;
}

struct headers_t {
    simple_t simple;
}

struct metadata_t {
    bit<16> out;
    bit<8>  kind;
}

parser P(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.simple);
        transition accept;
    }
}

control C(inout headers_t hdr, inout metadata_t md) {
    Register<bit<16>, bit<32>>(16) counters;
    RegisterAction<bit<16>, bit<32>, bit<16>>(counters) count_inc = {
        void apply(inout bit<16> value, out bit<16> rv) {
            value = value + 1;
            rv = value;
        }
    };
    Hash<bit<16>>(HashAlgorithm_t.CRC16) h;

    action double_it() { hdr.simple.value = hdr.simple.value + hdr.simple.value; }
    action set_kind(bit<8> k) { md.kind = k; }
    table classify {
        key = { hdr.simple.op : exact; }
        actions = { double_it; set_kind; NoAction; }
        default_action = NoAction();
        entries = {
            1 : double_it();
            2 : set_kind(9);
        }
        size = 8;
    }

    apply {
        classify.apply();
        if (hdr.simple.op == 3) {
            md.out = count_inc.execute(0);
        }
        if (hdr.simple.op == 4) {
            md.out = h.get({hdr.simple.value});
        }
    }
}

control D(packet_out pkt, inout headers_t hdr) {
    apply {
        pkt.emit(hdr.simple);
    }
}
"""


def run_mini(interp, op, value):
    data = bytes([op]) + value.to_bytes(2, "big")
    return interp.run_packet(data, parser="P", ingress="C", deparser="D")


class TestP4Parser:
    def test_parses_declarations(self):
        prog = parse_p4(MINI)
        assert "simple_t" in prog.headers
        assert prog.headers["simple_t"].bit_width == 24
        assert "C" in prog.controls and "P" in prog.parsers
        ctrl = prog.controls["C"]
        assert "classify" in ctrl.tables and "count_inc" in ctrl.register_actions
        assert ctrl.tables["classify"].entries[0].action == "double_it"

    def test_const_resolution(self):
        prog = parse_p4("const bit<16> A = 4; const bit<16> B = A * 2;")
        assert prog.constants["B"] == 8

    def test_nested_template_close(self):
        prog = parse_p4(
            "control C(inout bit<8> x) { Register<bit<32>, bit<32>>(4) r; apply { } }"
        )
        assert prog.controls["C"].registers["r"].size == 4

    def test_sized_literals(self):
        prog = parse_p4("const bit<16> X = 16w1234;")
        assert prog.constants["X"] == 1234

    def test_parse_error_has_line(self):
        with pytest.raises(P4ParseError):
            parse_p4("header h_t { bit<8> f } ")  # missing semicolon

    def test_all_baselines_parse(self):
        for name in P4_SOURCES:
            prog = parse_p4(p4_source(name))
            assert prog.controls, name


class TestP4Interp:
    def setup_method(self):
        self.prog = parse_p4(MINI)
        self.interp = P4Interpreter(self.prog)

    def test_table_entry_action(self):
        hdr, md, out = run_mini(self.interp, 1, 21)
        assert hdr["simple"].fields["value"] == 42

    def test_action_data(self):
        hdr, md, _ = run_mini(self.interp, 2, 0)
        assert md["kind"] == 9

    def test_default_action_on_miss(self):
        hdr, md, _ = run_mini(self.interp, 99, 5)
        assert hdr["simple"].fields["value"] == 5

    def test_register_action_persists(self):
        for expected in (1, 2, 3):
            _, md, _ = run_mini(self.interp, 3, 0)
            assert md["out"] == expected

    def test_register_wraps_at_width(self):
        self.interp.register_write("counters", 0, 0xFFFF)
        _, md, _ = run_mini(self.interp, 3, 0)
        assert md["out"] == 0

    def test_hash_extern(self):
        from repro import hashing

        _, md, _ = run_mini(self.interp, 4, 7)
        assert md["out"] == hashing.truncate(hashing.crc16(7, 16), 16)

    def test_deparse_roundtrip(self):
        _, _, out = run_mini(self.interp, 1, 21)
        assert out == bytes([1]) + (42).to_bytes(2, "big")

    def test_runtime_entry_insert_and_remove(self):
        self.interp.insert_entry("classify", [7], "set_kind", [3])
        _, md, _ = run_mini(self.interp, 7, 0)
        assert md["kind"] == 3
        assert self.interp.remove_entry("classify", [7])
        _, md, _ = run_mini(self.interp, 7, 0)
        assert md["kind"] == 0

    def test_short_packet_rejected(self):
        with pytest.raises(P4RuntimeError, match="too short"):
            self.interp.run_packet(b"\x01", parser="P", ingress="C")


class TestBaselineBehavior:
    """Cross-check handwritten P4 against the NetCL kernels."""

    def test_calc_matches_netcl(self):
        prog = parse_p4(p4_source("calc"))
        dev = P4NetCLSwitchDevice(prog, 1)
        for op, a, b, expected in (("+", 40, 2, 42), ("-", 50, 8, 42), ("^", 0xF0, 0x0F, 0xFF)):
            data = bytes([ord(op)]) + a.to_bytes(4, "big") + b.to_bytes(4, "big") + bytes(4)
            pkt = NetCLPacket(src=1, dst=1, from_=0xFFFF, to=1, comp=1, act=0, data=data)
            dec = dev.process(pkt)
            assert dec.packet is not None
            assert int.from_bytes(dec.packet.data[9:13], "big") == expected
            assert dec.packet.act == 7  # reflect_long

    def test_agg_two_workers(self):
        prog = parse_p4(p4_source("agg"))
        dev = P4NetCLSwitchDevice(prog, 1)

        def mk(worker, vals):
            data = bytes([0]) + (5).to_bytes(2, "big") + (5).to_bytes(2, "big")
            data += (1 << worker).to_bytes(2, "big") + bytes([3])
            for v in vals:
                data += v.to_bytes(4, "big")
            return NetCLPacket(src=worker + 1, dst=worker + 1, from_=0xFFFF, to=1, comp=1, act=0, data=data)

        assert dev.process(mk(0, [1] * 32)).kind.value == "drop"
        d = dev.process(mk(1, [2] * 32))
        assert d.kind.value == "multicast"
        sums = [int.from_bytes(d.packet.data[8 + 4 * i : 12 + 4 * i], "big") for i in range(32)]
        assert sums == [3] * 32

    def test_cache_hit_and_invalidate(self):
        prog = parse_p4(p4_source("cache"))
        dev = P4NetCLSwitchDevice(prog, 1)
        dev.insert_entry("cache_index", [42], "index_set", [0xFFFF, 3])
        for i in range(16):
            dev.register_write(f"data_{i}", 3, 100 + i)
        dev.register_write("valid", 3, 1)

        def mk(op, key):
            data = bytes([op]) + key.to_bytes(8, "big") + bytes([0, 0]) + bytes(64)
            return NetCLPacket(src=1, dst=2, from_=0xFFFF, to=1, comp=1, act=0, data=data)

        d = dev.process(mk(1, 42))
        assert d.packet.act == 6 and d.target == 1  # reflect to client
        vals = [int.from_bytes(d.packet.data[11 + 4 * i : 15 + 4 * i], "big") for i in range(16)]
        assert vals == [100 + i for i in range(16)]
        dev.process(mk(2, 42))  # PUT invalidates
        d2 = dev.process(mk(1, 42))
        assert d2.packet.act == 0 and d2.target == 2  # pass to server


class TestResources:
    def test_all_baselines_fit_tofino(self):
        from repro.p4.resources import p4_local_bits
        from repro.tofino.report import build_report

        for name in P4_SOURCES:
            prog = parse_p4(p4_source(name))
            spec = p4_to_pipeline_spec(prog, name=name)
            report = build_report(spec, local_fields=[p4_local_bits(prog)])
            assert report.stages_used <= 12, name

    def test_handwritten_agg_uses_tcam(self):
        from repro.tofino.report import build_report

        prog = parse_p4(p4_source("agg"))
        report = build_report(p4_to_pipeline_spec(prog, name="agg"))
        assert report.tcam_pct > 0


class TestLoc:
    def test_count_skips_comments_and_blanks(self):
        src = "// c\n\nheader h_t { /* x */\n bit<8> f;\n}\n"
        assert count_loc(src) == 3

    def test_baseline_loc_magnitudes(self):
        # Paper Table III: handwritten P4 is O(100) lines per app.
        locs = {name: count_loc(p4_source(name)) for name in P4_SOURCES}
        assert locs["agg"] > 400
        assert locs["cache"] > 300
        assert all(v > 100 for v in locs.values()), locs

    def test_classifier_buckets(self):
        counts = classify_lines(p4_source("cache"))
        assert counts[LineCategory.HEADERS] > 10
        assert counts[LineCategory.PARSER] > 10
        assert counts[LineCategory.REGISTER] > 10
        assert counts[LineCategory.TABLES] > 5

    def test_packet_processing_share_dominates(self):
        # Fig. 12: most P4 code is packet processing + plumbing, roughly
        # half or more is non-compute.
        total_pp = 0.0
        for name in P4_SOURCES:
            frac = breakdown_fractions(classify_lines(p4_source(name)))
            total_pp += frac["packet_processing"] + frac["other"]
        avg_non_compute = total_pp / len(P4_SOURCES)
        assert avg_non_compute > 0.35
