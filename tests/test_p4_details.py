"""P4 interpreter details: slices, casts, select ranges, exit, masks."""

import pytest

from repro.p4 import P4Interpreter, parse_p4
from repro.p4.interp import P4RuntimeError

SRC = """
header w_t {
    bit<4>  nib_hi;
    bit<4>  nib_lo;
    bit<16> word;
}

struct headers_t { w_t w; }

struct metadata_t {
    bit<16> out;
    bit<8>  tag;
}

parser P(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        pkt.extract(hdr.w);
        transition select(hdr.w.word) {
            0 .. 99        : low;
            0xFF00 &&& 0xFF00 : masked;
            default        : accept;
        }
    }
    state low {
        transition accept;
    }
    state masked {
        transition accept;
    }
}

control C(inout headers_t hdr, inout metadata_t md) {
    apply {
        md.out = hdr.w.word[11:4];          // slice read
        hdr.w.word[3:0] = (bit<4>)md.tag;   // slice write + cast
        if (hdr.w.nib_hi == 0xF) {
            exit;
        }
        md.tag = 1;
    }
}

control D(packet_out pkt, inout headers_t hdr) {
    apply { pkt.emit(hdr.w); }
}
"""


@pytest.fixture
def interp():
    return P4Interpreter(parse_p4(SRC))


def _packet(hi, lo, word):
    return bytes([(hi << 4) | lo]) + word.to_bytes(2, "big")


class TestSubByteFields:
    def test_nibble_extraction(self, interp):
        hdr, md, _ = interp.run_packet(_packet(0xA, 0x5, 0), parser="P", ingress="C")
        assert hdr["w"].fields["nib_hi"] == 0xA
        assert hdr["w"].fields["nib_lo"] == 0x5

    def test_slice_read(self, interp):
        hdr, md, _ = interp.run_packet(_packet(0, 0, 0x0AB0), parser="P", ingress="C")
        assert md["out"] == 0xAB

    def test_slice_write_merges_bits(self, interp):
        hdr, md, _ = interp.run_packet(
            _packet(0, 0, 0xABC0), parser="P", ingress="C", metadata={"tag": 0xF}
        )
        assert hdr["w"].fields["word"] == 0xABCF

    def test_exit_stops_control(self, interp):
        hdr, md, _ = interp.run_packet(_packet(0xF, 0, 0), parser="P", ingress="C")
        assert md["tag"] == 0  # assignment after exit never ran
        hdr, md, _ = interp.run_packet(_packet(0x1, 0, 0), parser="P", ingress="C")
        assert md["tag"] == 1

    def test_deparse_repacks_nibbles(self, interp):
        _, _, out = interp.run_packet(
            _packet(0x3, 0x7, 0x1200), parser="P", ingress="C", deparser="D"
        )
        assert out[0] == 0x37


class TestSelectKeysets:
    def test_range_keyset(self, interp):
        # packets with word in 0..99 take the 'low' state and still accept
        interp.run_packet(_packet(0, 0, 50), parser="P", ingress="C")

    def test_masked_keyset(self, interp):
        interp.run_packet(_packet(0, 0, 0xFF42), parser="P", ingress="C")

    def test_unmatched_falls_to_default(self, interp):
        interp.run_packet(_packet(0, 0, 500), parser="P", ingress="C")


class TestErrorPaths:
    def test_unknown_parser_state(self):
        bad = SRC.replace("transition accept;\n    }\n    state masked", "transition missing;\n    }\n    state masked", 1)
        interp = P4Interpreter(parse_p4(bad))
        with pytest.raises(P4RuntimeError, match="undefined parser state"):
            interp.run_packet(_packet(0, 0, 50), parser="P", ingress="C")

    def test_register_index_out_of_range(self):
        src = """
struct headers_t { }
struct metadata_t { bit<8> x; }
control C(inout metadata_t md) {
    Register<bit<8>, bit<32>>(4) r;
    RegisterAction<bit<8>, bit<32>, bit<8>>(r) bump = {
        void apply(inout bit<8> value) { value = value + 1; }
    };
    apply { bump.execute(99); }
}
"""
        interp = P4Interpreter(parse_p4(src))

        with pytest.raises(P4RuntimeError, match="out of range"):
            interp._run_control(interp.program.controls["C"], {}, {"x": 0})

    def test_unknown_table(self, interp):
        from repro.p4.interp import _Env

        env = _Env(interp, {}, {}, {}, None, interp.program.controls["C"])
        with pytest.raises(P4RuntimeError, match="unknown table"):
            interp.apply_table("missing", env)
