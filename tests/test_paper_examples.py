"""The remaining worked examples of §V, executed verbatim.

Each test takes a code fragment from the paper's programming-model section
and checks the documented semantics.
"""

import pytest

from repro.core import compile_netcl
from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.runtime import DeviceConnection, NetCLDevice


class TestSectionVB_ManagedThreshold:
    """§V-B: a runtime-configurable count-min-sketch threshold."""

    SRC = r"""
_managed_ unsigned thresh;
_managed_ unsigned cms[65536];

_kernel(1) void probe(unsigned k, unsigned &hot) {
  unsigned c = ncl::atomic_sadd_new(&cms[ncl::crc16(k)], 1);
  hot = c > thresh ? 1 : 0;
}
"""

    def test_threshold_reconfigurable_without_new_messages(self):
        cp = compile_netcl(self.SRC, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        conn = DeviceConnection(dev)
        conn.managed_write("thresh", 2)  # ncl::managed_write(c, &thresh, 2)
        from repro.runtime import KernelSpec, pack, Message
        from repro.runtime.message import NetCLPacket

        spec = KernelSpec.from_kernel(cp.kernels()[0])

        def probe():
            raw = pack(Message(src=1, dst=2, comp=1, to=1), spec, [7, None])
            return dev.process(NetCLPacket.from_wire(raw)).packet.data[-4:]

        results = [int.from_bytes(probe(), "big") for _ in range(4)]
        assert results == [0, 0, 1, 1]  # hot only once count exceeds 2
        # raise the threshold through the control plane: hot goes quiet
        conn.managed_write("thresh", 100)
        assert int.from_bytes(probe(), "big") == 0


class TestSectionVC_PerDeviceCopies:
    """§V-C: multi-location _managed_ memory has one copy per device."""

    SRC = "_net_ _managed_ _at(1,2) unsigned m;\n_kernel(1) _at(1,2) void k(unsigned &r) { r = m; }"

    def test_writes_are_local_per_device(self):
        devices = {}
        for dev_id in (1, 2):
            cp = compile_netcl(self.SRC, dev_id)
            devices[dev_id] = NetCLDevice(dev_id, cp.module, cp.kernels())
        conn1 = DeviceConnection(devices[1])
        conn2 = DeviceConnection(devices[2])
        conn1.managed_write("m", 1)  # managed_write(dev1, &m, 1)
        conn2.managed_write("m", 2)  # managed_write(dev2, &m, 2)
        assert conn1.managed_read("m") == 1  # a = 1, per the paper
        assert conn2.managed_read("m") == 2


class TestSectionVB_LookupSemantics:
    """§V-B: set membership and kv/rv lookup, verbatim values."""

    def _run(self, src, fields):
        cp = compile_netcl(src, 1, fit=False)
        interp = IRInterpreter(cp.module, GlobalState(), device_id=1)
        msg = KernelMessage(dict(fields))
        interp.run_kernel(cp.kernels()[0], msg)
        return msg.fields

    def test_scalar_lookup_array_acts_as_set(self):
        src = (
            "_net_ _lookup_ unsigned a[] = {1,2,3};\n"
            "_kernel(1) void k(unsigned &h2, unsigned &h5) {\n"
            "  h2 = ncl::lookup(a, 2);\n"
            "  h5 = ncl::lookup(a, 5); }"
        )
        out = self._run(src, {"h2": 9, "h5": 9})
        assert out["h2"] == 1 and out["h5"] == 0

    def test_kv_and_rv_lookup_paper_values(self):
        src = (
            "_net_ _lookup_ ncl::kv<int,int> a[] = { {1,2}, {2,3} };\n"
            "_net_ _lookup_ ncl::rv<int,int> b[] = { {{1,10},1}, {{11,20},2} };\n"
            "_kernel(1) void k(int &x, int &y, unsigned &ha, unsigned &hb) {\n"
            "  ha = ncl::lookup(a, 2, x);\n"
            "  hb = ncl::lookup(b, 21, y); }"
        )
        out = self._run(src, {"x": 42, "y": 42, "ha": 0, "hb": 0})
        assert out["ha"] == 1 and out["x"] == 3  # true, x = 3
        assert out["hb"] == 0 and out["y"] == 42  # false, y = 42


class TestSectionVD_PaperRejections:
    """§V-D: the exact example kernels the paper marks valid/invalid."""

    def test_mutually_exclusive_kernel_valid(self):
        compile_netcl(
            "_net_ int m[42];\n"
            "_kernel(1) void b(int x, int &r) { r = (x > 10) ? m[0] : m[1]; }",
            1,
        )

    def test_same_path_kernel_invalid(self):
        from repro.passes.memcheck import MemoryCheckError

        with pytest.raises(MemoryCheckError):
            compile_netcl(
                "_net_ int m[42];\n"
                "_kernel(2) void a(int x, int &r) { r = m[0] + m[1]; }",
                1,
            )

    def test_fig4_kernel_full_fidelity(self, fig4_compiled):
        """The complete Fig. 4 cache compiles, fits, and behaves."""
        assert fig4_compiled.report.stages_used <= 12
        interp = IRInterpreter(fig4_compiled.module, GlobalState(), device_id=1)
        fn = fig4_compiled.kernels()[0]
        # all four static entries hit with value 42
        for key in (1, 2, 3, 4):
            msg = KernelMessage({"op": 1, "k": key, "v": 0, "hit": 0, "hot": 0})
            out = interp.run_kernel(fn, msg)
            assert out.kind.value == "reflect" and msg.fields["v"] == 42


class TestFitDump:
    def test_dump_is_readable(self, fig4_compiled):
        text = fig4_compiled.report.fit.dump()
        assert "stage  0" in text and "ncl_dispatch" in text
        assert text.count("stage") >= fig4_compiled.report.stages_used
