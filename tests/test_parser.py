"""Unit tests for the NetCL parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse_source


class TestDeclarations:
    def test_global_with_specifiers(self):
        prog = parse_source("_managed_ unsigned cms[3][65536];")
        (decl,) = prog.globals()
        assert decl.specs.managed and not decl.specs.lookup
        assert decl.dims == (3, 65536)
        assert isinstance(decl.type, ast.ScalarType) and decl.type.width == 32

    def test_lookup_kv_with_inferred_size(self):
        prog = parse_source(
            "_net_ _lookup_ ncl::kv<unsigned, unsigned> t[] = {{1,2},{3,4}};"
        )
        (decl,) = prog.globals()
        assert decl.dims == (2,)
        assert isinstance(decl.type, ast.LookupPairType) and decl.type.kind == "kv"

    def test_rv_type(self):
        prog = parse_source("_net_ _lookup_ ncl::rv<int,int> r[] = {{{1,10},1}};")
        (decl,) = prog.globals()
        assert isinstance(decl.type, ast.LookupPairType) and decl.type.kind == "rv"

    def test_at_specifier_multiple_locations(self):
        prog = parse_source("_at(1, 2, 3) _net_ int m[4];")
        assert prog.globals()[0].specs.at == (1, 2, 3)

    def test_kernel_declaration(self):
        prog = parse_source("_kernel(7) void k(int x) { }")
        (fn,) = prog.functions()
        assert fn.specs.kernel == 7 and fn.params[0].name == "x"

    def test_spec_attribute_on_pointer(self):
        prog = parse_source("_kernel(1) void k(unsigned _spec(32) *v) { }")
        p = prog.functions()[0].params[0]
        assert p.ptr and p.spec == 32 and p.element_count == 32

    def test_reference_parameter(self):
        prog = parse_source("_kernel(1) void k(unsigned &v) { }")
        assert prog.functions()[0].params[0].byref

    def test_array_parameter_no_decay(self):
        prog = parse_source("_kernel(1) void k(int x[3]) { }")
        p = prog.functions()[0].params[0]
        assert p.dims == (3,) and p.element_count == 3

    def test_constant_dimension_expression(self):
        prog = parse_source("#define N 4\n_net_ int m[N * 2];")
        assert prog.globals()[0].dims == (8,)


class TestTypes:
    @pytest.mark.parametrize(
        "src,width,signed",
        [
            ("char", 8, False),
            ("unsigned char", 8, False),
            ("short", 16, True),
            ("unsigned short", 16, False),
            ("int", 32, True),
            ("unsigned", 32, False),
            ("unsigned int", 32, False),
            ("long", 64, True),
            ("uint8_t", 8, False),
            ("uint16_t", 16, False),
            ("uint64_t", 64, False),
            ("int32_t", 32, True),
            ("bool", 1, False),
        ],
    )
    def test_fundamental_types(self, src, width, signed):
        prog = parse_source(f"_net_ {src} v;")
        ty = prog.globals()[0].type
        assert isinstance(ty, ast.ScalarType)
        assert (ty.width, ty.signed) == (width, signed)


class TestStatements:
    def _body(self, body: str) -> ast.Block:
        prog = parse_source(f"_kernel(1) void k(int x) {{ {body} }}")
        return prog.functions()[0].body

    def test_if_else_chain(self):
        block = self._body("if (x > 1) x = 1; else if (x < 0) x = 0; else x = 2;")
        stmt = block.stmts[0]
        assert isinstance(stmt, ast.If) and isinstance(stmt.els, ast.If)

    def test_for_loop(self):
        block = self._body("for (auto i = 0; i < 4; ++i) x = x + i;")
        assert isinstance(block.stmts[0], ast.For)

    def test_while_rejected(self):
        with pytest.raises(CompileError, match="while"):
            self._body("while (x) { }")

    def test_goto_rejected(self):
        with pytest.raises(CompileError, match="goto"):
            self._body("goto end;")

    def test_break_rejected(self):
        with pytest.raises(CompileError, match="fully unrollable"):
            self._body("for (auto i = 0; i < 4; ++i) break;")

    def test_return_with_action(self):
        block = self._body("return ncl::drop();")
        ret = block.stmts[0]
        assert isinstance(ret, ast.Return) and isinstance(ret.value, ast.Call)
        assert ret.value.is_ncl and ret.value.name == "drop"


class TestExpressions:
    def _expr(self, text: str) -> ast.Expr:
        prog = parse_source(f"_kernel(1) void k(int x, int y) {{ x = {text}; }}")
        stmt = prog.functions()[0].body.stmts[0]
        return stmt.expr.value  # type: ignore[union-attr]

    def test_precedence(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_ternary(self):
        assert isinstance(self._expr("x > 0 ? x : y"), ast.Ternary)

    def test_ncl_namespaced_call(self):
        e = self._expr("ncl::crc16(x)")
        assert e.is_ncl and e.name == "crc16"

    def test_ncl_template_width(self):
        e = self._expr("ncl::crc32<16>(x)")
        assert e.template_args == [16]

    def test_ncl_nested_namespace(self):
        e = self._expr("ncl::tna::crc64(x)")
        assert e.name == "tna.crc64"

    def test_cast(self):
        e = self._expr("(unsigned) y")
        assert isinstance(e, ast.Call) and e.name == "__cast__"

    def test_member_access_device_id(self):
        e = self._expr("x + device.id")
        assert isinstance(e.right, ast.Member) and e.right.field_name == "id"

    def test_dereference_rejected(self):
        with pytest.raises(CompileError, match="dereference"):
            self._expr("*x")

    def test_indexing_chain(self):
        self._expr("y")
        prog = parse_source("_net_ int m[2][3]; _kernel(1) void k() { m[1][2] = 0; }")
        assign = prog.functions()[0].body.stmts[0].expr
        assert isinstance(assign.target, ast.Index)
        assert isinstance(assign.target.base, ast.Index)

    def test_compound_assignment(self):
        prog = parse_source("_kernel(1) void k(int x) { x += 2; x <<= 1; }")
        ops = [s.expr.op for s in prog.functions()[0].body.stmts]
        assert ops == ["+=", "<<="]

    def test_postfix_and_prefix_incdec(self):
        prog = parse_source("_kernel(1) void k(int x) { x++; --x; }")
        s0, s1 = prog.functions()[0].body.stmts
        assert not s0.expr.prefix and s1.expr.prefix
