"""Middle-end passes: mem2reg, folding, DCE, if-conversion, DAG check,
memory partitioning/duplication, hoisting, speculation, intrinsic
conversion, structurization, phi elimination."""

import pytest

from repro.ir import GlobalState, IRInterpreter, KernelMessage, verify_function
from repro.ir.instructions import (
    ActionKind,
    Alloca,
    AtomicRMW,
    BinOp,
    Constant,
    ICmpPred,
    Phi,
    Select,
    Store,
)
from repro.lang import analyze, lower_to_ir, parse_source
from repro.lang.errors import CompileError
from repro.passes import (
    PassOptions,
    check_dag,
    check_memory_constraints,
    MemoryCheckError,
    dead_code_elimination,
    duplicate_lookups,
    eliminate_phis,
    hoist_common_values,
    mem2reg,
    partition_memory,
    run_default_pipeline,
    simplify_function,
    speculate,
    structurize,
)
from repro.passes.ifconvert import if_convert
from repro.passes.intrinsics import convert_intrinsic_patterns
from repro.passes.structurize import (
    IfNode,
    SeqNode,
    _structurize_regions,
)


def _lower(src):
    return lower_to_ir(analyze(parse_source(src)))


def _count(fn, klass):
    return sum(1 for i in fn.instructions() if isinstance(i, klass))


class TestMem2Reg:
    def test_scalars_promoted(self):
        mod = _lower("_kernel(1) void k(unsigned x, unsigned &r) { unsigned t = x + 1; r = t * 2; }")
        fn = mod.kernels()[0]
        promoted = mem2reg(fn)
        assert promoted >= 2  # t and the by-value copy of x
        scalars = [a for a in fn.instructions() if isinstance(a, Alloca) and a.is_scalar]
        assert not scalars
        verify_function(fn)

    def test_arrays_not_promoted(self):
        mod = _lower("_kernel(1) void k(unsigned x) { unsigned a[4]; a[0] = x; }")
        fn = mod.kernels()[0]
        mem2reg(fn)
        arrays = [a for a in fn.instructions() if isinstance(a, Alloca) and not a.is_scalar]
        assert len(arrays) == 1

    def test_phi_inserted_at_merge(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {"
            " unsigned t; if (x > 1) t = 1; else t = 2; r = t; }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        assert _count(fn, Phi) == 1
        verify_function(fn)

    def test_behavior_preserved(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {"
            " unsigned t = 0; if (x > 10) t = x; r = t + 1; }"
        )
        for x, expected in ((5, 1), (11, 12)):
            mod = _lower(src)
            fn = mod.kernels()[0]
            mem2reg(fn)
            verify_function(fn)
            msg = KernelMessage({"x": x, "r": 0})
            IRInterpreter(mod, GlobalState()).run_kernel(fn, msg)
            assert msg.fields["r"] == expected


class TestSimplify:
    def test_constant_folding(self):
        fn = _lower("_kernel(1) void k(unsigned &r) { r = 2 * 3 + 4; }").kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert _count(fn, BinOp) == 0

    def test_strength_reduction_mul_to_shift(self):
        fn = _lower("_kernel(1) void k(unsigned x, unsigned &r) { r = x * 8; }").kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        ops = [i.kind.value for i in fn.instructions() if isinstance(i, BinOp)]
        assert ops == ["shl"]

    def test_div_and_rem_by_power_of_two(self):
        fn = _lower(
            "_kernel(1) void k(unsigned x, unsigned &q, unsigned &r) { q = x / 16; r = x % 16; }"
        ).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        ops = sorted(i.kind.value for i in fn.instructions() if isinstance(i, BinOp))
        assert ops == ["and", "lshr"]

    def test_constant_branch_folded(self):
        fn = _lower(
            "_kernel(1) void k(unsigned &r) { if (1 < 2) r = 1; else r = 2; }"
        ).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert len(fn.blocks) == 1

    def test_identity_simplifications(self):
        fn = _lower(
            "_kernel(1) void k(unsigned x, unsigned &r) { r = (x + 0) * 1 | 0; }"
        ).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert _count(fn, BinOp) == 0


class TestDCE:
    def test_dead_arithmetic_removed(self):
        fn = _lower(
            "_kernel(1) void k(unsigned x, unsigned &r) { unsigned dead = x * 7; r = x; }"
        ).kernels()[0]
        mem2reg(fn)
        dead_code_elimination(fn)
        assert _count(fn, BinOp) == 0

    def test_atomics_never_removed(self):
        fn = _lower(
            "_net_ unsigned c;\n_kernel(1) void k() { ncl::atomic_inc(&c); }"
        ).kernels()[0]
        mem2reg(fn)
        dead_code_elimination(fn)
        assert _count(fn, AtomicRMW) == 1

    def test_dead_local_array_store_removed(self):
        fn = _lower(
            "_kernel(1) void k(unsigned x) { unsigned a[4]; a[1] = x; }"
        ).kernels()[0]
        mem2reg(fn)
        dead_code_elimination(fn)
        assert _count(fn, Store) == 0 and _count(fn, Alloca) == 0


class TestIfConvert:
    def test_min_pattern_becomes_select(self):
        src = (
            "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {"
            " unsigned m = a; if (b < m) m = b; r = m; }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        n = if_convert(fn)
        assert n == 1 and _count(fn, Select) == 1
        verify_function(fn)

    def test_behavior_preserved(self):
        src = (
            "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {"
            " unsigned m = a; if (b < m) m = b; r = m; }"
        )
        for a, b in ((3, 9), (9, 3), (4, 4)):
            mod = _lower(src)
            fn = mod.kernels()[0]
            mem2reg(fn)
            simplify_function(fn)
            if_convert(fn)
            msg = KernelMessage({"a": a, "b": b, "r": 0})
            IRInterpreter(mod, GlobalState()).run_kernel(fn, msg)
            assert msg.fields["r"] == min(a, b)

    def test_side_effecting_arm_not_converted(self):
        src = (
            "_net_ unsigned c;\n"
            "_kernel(1) void k(unsigned x) { if (x > 1) { ncl::atomic_inc(&c); } }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert if_convert(fn) == 0


class TestDagCheck:
    def test_loop_free_passes(self, fig4_module):
        for fn in fig4_module.kernels():
            check_dag(fn)

    def test_cycle_detected(self):
        from repro.ir import IRBuilder
        from repro.ir.module import Function, FunctionKind

        fn = Function("loopy", FunctionKind.KERNEL, [], computation=1)
        b = IRBuilder(fn)
        entry = fn.new_block("entry")
        body = fn.new_block("body")
        b.position_at_end(entry)
        b.jmp(body)
        b.position_at_end(body)
        b.jmp(body)
        with pytest.raises(CompileError, match="not a DAG"):
            check_dag(fn)


class TestMemoryPasses:
    def test_partitioning_splits_constant_outer(self, fig4_module):
        mod = fig4_module
        for fn in mod.kernels():
            mem2reg(fn)
            simplify_function(fn)
        n = partition_memory(mod)
        assert n == 1
        assert "cms.part0" in mod.globals and "cms.part2" in mod.globals

    def test_partitioning_skips_dynamic_outer(self):
        src = (
            "_net_ unsigned m[4][8];\n"
            "_kernel(1) void k(unsigned i, unsigned j, unsigned &r) { r = m[i & 3][j & 7]; }"
        )
        mod = _lower(src)
        for fn in mod.kernels():
            mem2reg(fn)
            simplify_function(fn)
        assert partition_memory(mod) == 0

    def test_duplication_copies_static_lookup(self):
        src = (
            "_net_ _lookup_ unsigned t[] = {1, 2, 3};\n"
            "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {"
            " if (a > 0) r = ncl::lookup(t, a); else r = ncl::lookup(t, b); }"
        )
        mod = _lower(src)
        for fn in mod.kernels():
            mem2reg(fn)
            simplify_function(fn)
        assert duplicate_lookups(mod) == 2
        assert "t.dup0" in mod.globals and "t.dup1" in mod.globals

    def test_managed_lookup_not_duplicated(self):
        src = (
            "_managed_ _lookup_ ncl::kv<int,int> t[8];\n"
            "_kernel(1) void k(unsigned a, int &r) {"
            " if (a > 0) ncl::lookup(t, 1, r); else ncl::lookup(t, 2, r); }"
        )
        mod = _lower(src)
        for fn in mod.kernels():
            mem2reg(fn)
            simplify_function(fn)
        assert duplicate_lookups(mod) == 0


class TestMemoryChecks:
    def _prep(self, src):
        mod = _lower(src)
        fn = mod.kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        return fn

    def test_paper_mutually_exclusive_valid(self):
        # §V-D kernel 1: valid.
        fn = self._prep(
            "_net_ int m[42];\n"
            "_kernel(1) void b(int x, int &r) { r = (x > 10) ? m[0] : m[1]; }"
        )
        check_memory_constraints(fn)

    def test_paper_same_path_invalid(self):
        # §V-D kernel 2: invalid.
        fn = self._prep(
            "_net_ int m[42];\n"
            "_kernel(2) void a(int x, int &r) { r = m[0] + m[1]; }"
        )
        with pytest.raises(MemoryCheckError, match="more than once"):
            check_memory_constraints(fn)

    def test_reorderable_independent_accesses_valid(self):
        # §V-D example b: orders differ but accesses are independent.
        fn = self._prep(
            "_net_ int m1[42]; _net_ int m2[42];\n"
            "_kernel(2) void b(int x, int &r) {\n"
            "  if (x > 10) { r = m1[0] + m2[x & 31]; }\n"
            "  else        { r = m2[x & 31] + m1[0]; } }"
        )
        check_memory_constraints(fn)

    def test_dependent_reversed_accesses_invalid(self):
        # §V-D example a: cannot be reordered.
        fn = self._prep(
            "_net_ int m1[64]; _net_ int m2[64];\n"
            "_kernel(1) void a(int x, int &r) {\n"
            "  int t;\n"
            "  if (x > 10) { t = m1[0]; t = m2[t & 63]; }\n"
            "  else        { t = m2[0]; t = m1[t & 63]; }\n"
            "  r = t; }"
        )
        with pytest.raises(MemoryCheckError, match="reorder"):
            check_memory_constraints(fn)

    def test_distance_threshold(self):
        src = (
            "_net_ int m[4];\n"
            "_kernel(1) void k(int a, int b, int c, int d, int &r) {\n"
            "  if (a > 0) { r = m[0]; }\n"
            "  else if (b > 0) { if (c > 0) { if (d > 0) { if (a < b) { r = m[1]; } } } } }"
        )
        fn = self._prep(src)
        with pytest.raises(MemoryCheckError, match="branches apart"):
            check_memory_constraints(fn, distance_threshold=1)
        check_memory_constraints(fn, distance_threshold=10)


class TestHoistSpeculate:
    def test_common_value_dedup(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &a, unsigned &b) {"
            " if (x > 1) a = x * 3 + 1; else b = x * 3 + 1; }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        before = _count(fn, BinOp)
        hoist_common_values(fn)
        dead_code_elimination(fn)
        assert _count(fn, BinOp) < before
        verify_function(fn)

    def test_speculation_moves_pure_ops_to_entry(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {"
            " if (x > 1) { r = ncl::crc16(x); } }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        moved = speculate(fn)
        assert moved >= 1
        verify_function(fn)

    def test_division_never_speculated(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned y, unsigned &r) {"
            " if (y != 0) { r = x / y; } }"
        )
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        speculate(fn)
        divs_in_entry = [
            i for i in fn.entry.instructions if isinstance(i, BinOp) and i.kind.value == "udiv"
        ]
        assert not divs_in_entry


class TestIntrinsicConversion:
    def test_dynamic_ult_converted(self):
        src = "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) { r = a < b ? 1 : 0; }"
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        n = convert_intrinsic_patterns(fn)
        assert n >= 1
        # behavior preserved across the boundary cases
        for a, b in ((0, 0), (1, 2), (2, 1), (0xFFFFFFFF, 0), (0, 0xFFFFFFFF)):
            mod = _lower(src)
            f = mod.kernels()[0]
            mem2reg(f)
            simplify_function(f)
            convert_intrinsic_patterns(f)
            msg = KernelMessage({"a": a, "b": b, "r": 9})
            IRInterpreter(mod, GlobalState()).run_kernel(f, msg)
            assert msg.fields["r"] == (1 if a < b else 0), (a, b)

    def test_signed_compare_converted_correctly(self):
        src = "_kernel(1) void k(int a, int b, unsigned &r) { r = a < b ? 1 : 0; }"
        for a, b in ((0, 1), (1, 0), (0xFFFFFFFF, 1), (1, 0xFFFFFFFF)):
            mod = _lower(src)
            f = mod.kernels()[0]
            mem2reg(f)
            simplify_function(f)
            convert_intrinsic_patterns(f)
            sa = a - (1 << 32) if a >> 31 else a
            sb = b - (1 << 32) if b >> 31 else b
            msg = KernelMessage({"a": a, "b": b, "r": 9})
            IRInterpreter(mod, GlobalState()).run_kernel(f, msg)
            assert msg.fields["r"] == (1 if sa < sb else 0), (a, b)

    def test_constant_compares_untouched(self):
        src = "_kernel(1) void k(unsigned a, unsigned &r) { r = a < 7 ? 1 : 0; }"
        fn = _lower(src).kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        assert convert_intrinsic_patterns(fn) == 0


class TestStructurize:
    def _tree(self, src):
        mod = _lower(src)
        fn = mod.kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        eliminate_phis(fn)
        return _structurize_regions(fn)

    def test_straight_line(self):
        tree = self._tree("_kernel(1) void k(unsigned &r) { r = 1; }")
        assert isinstance(tree, SeqNode)

    def test_nested_ifs(self):
        tree = self._tree(
            "_kernel(1) void k(unsigned x, unsigned &r) {"
            " if (x > 1) { if (x > 2) r = 2; else r = 1; } }"
        )
        ifs = [i for i in tree.items if isinstance(i, IfNode)]
        assert len(ifs) == 1

    def test_early_return_arms(self):
        tree = self._tree(
            "_kernel(1) void k(unsigned x) {"
            " if (x == 1) return ncl::drop();"
            " if (x == 2) return ncl::reflect(); }"
        )
        assert isinstance(tree, SeqNode)

    def test_early_escape_to_outer_merge(self):
        # The AGG shape: a branch whose arms return while a sibling chain
        # falls through to an outer sink.
        tree = self._tree(
            "_kernel(1) void k(unsigned x, unsigned &r) {\n"
            "  if (x > 0) {\n"
            "    if (x == 1) return ncl::reflect();\n"
            "    if (x == 2) return ncl::multicast(4);\n"
            "  }\n"
            "  r = 7;\n"
            "  return ncl::drop(); }"
        )
        assert isinstance(tree, SeqNode)

    def test_fallback_predicates_for_unstructured(self):
        # Hand-build an unstructured CFG (arm jumps past a merge).
        from repro.ir import IRBuilder
        from repro.ir.instructions import Constant, ICmpPred
        from repro.ir.module import Argument, Function, FunctionKind
        from repro.ir.types import U32

        fn = Function("u", FunctionKind.KERNEL, [Argument("x", U32)], computation=1)
        b = IRBuilder(fn)
        entry = fn.new_block("entry")
        m1 = fn.new_block("m1")
        m2 = fn.new_block("m2")
        side = fn.new_block("side")
        b.position_at_end(entry)
        c = b.icmp(ICmpPred.EQ, fn.args[0], Constant(U32, 0))
        b.br(c, side, m1)
        b.position_at_end(side)
        c2 = b.icmp(ICmpPred.EQ, fn.args[0], Constant(U32, 1))
        b.br(c2, m1, m2)
        b.position_at_end(m1)
        b.jmp(m2)
        b.position_at_end(m2)
        b.ret_action(ActionKind.PASS)
        tree = structurize(fn)  # falls back, must not raise
        assert isinstance(tree, SeqNode)


class TestPhiElim:
    def test_phis_replaced_by_slots(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {"
            " unsigned t; if (x > 1) t = 1; else t = 2; r = t; }"
        )
        mod = _lower(src)
        fn = mod.kernels()[0]
        mem2reg(fn)
        assert _count(fn, Phi) == 1
        n = eliminate_phis(fn)
        assert n == 1 and _count(fn, Phi) == 0
        verify_function(fn)
        msg = KernelMessage({"x": 5, "r": 0})
        IRInterpreter(mod, GlobalState()).run_kernel(fn, msg)
        assert msg.fields["r"] == 1


class TestFullPipeline:
    def test_fig4_behavior_after_all_passes(self, fig4_module):
        run_default_pipeline(fig4_module, PassOptions())
        fn = fig4_module.functions["query"]
        interp = IRInterpreter(fig4_module, GlobalState(), device_id=1)
        msg = KernelMessage({"op": 1, "k": 3, "v": 0, "hit": 0, "hot": 0})
        out = interp.run_kernel(fn, msg)
        assert out.kind == ActionKind.REFLECT and msg.fields["v"] == 42

    def test_pipeline_records_pass_stats(self, fig4_module):
        pm = run_default_pipeline(fig4_module, PassOptions())
        names = {r.name for r in pm.records}
        assert {"mem2reg", "simplify", "dce", "memcheck"} <= names
        assert pm.total_seconds() >= 0


class TestDagCheckDeep:
    """Regression: check_dag walks the CFG iteratively and survives graphs
    far deeper than Python's recursion limit (the old recursive DFS blew
    up with RecursionError on long unrolled kernels)."""

    def _chain(self, n, *, close_cycle=False):
        from repro.ir import IRBuilder
        from repro.ir.module import Function, FunctionKind

        fn = Function("deep", FunctionKind.KERNEL, [], computation=1)
        b = IRBuilder(fn)
        blocks = [fn.new_block(f"b{i}") for i in range(n)]
        for i in range(n - 1):
            b.position_at_end(blocks[i])
            b.jmp(blocks[i + 1])
        b.position_at_end(blocks[-1])
        if close_cycle:
            b.jmp(blocks[0])
        else:
            b.ret_value()
        return fn

    def test_deep_linear_chain_passes(self):
        import sys

        check_dag(self._chain(sys.getrecursionlimit() * 3))

    def test_cycle_at_end_of_deep_chain_detected(self):
        import sys

        with pytest.raises(CompileError, match="not a DAG"):
            check_dag(
                self._chain(sys.getrecursionlimit() * 3, close_cycle=True)
            )

    def test_engine_mode_collects_instead_of_raising(self):
        from repro.analysis import DiagnosticEngine

        engine = DiagnosticEngine()
        check_dag(self._chain(8, close_cycle=True), engine=engine)
        assert [d.code for d in engine.diagnostics] == ["NCL101"]
        assert engine.errors


class TestMemcheckDiagnostics:
    """MemoryCheckError carries structured diagnostics anchored at the
    source location of the offending accesses (previously the locations
    were lost in a flat message string)."""

    def _prep(self, src):
        mod = _lower(src)
        fn = mod.kernels()[0]
        mem2reg(fn)
        simplify_function(fn)
        return fn

    SAME_PATH = (
        "_net_ int m[42];\n"
        "_kernel(2) void a(int x, int &r) {\n"
        "  r = m[0] + m[1]; }"
    )

    def test_diagnostics_carry_source_locations(self):
        fn = self._prep(self.SAME_PATH)
        with pytest.raises(MemoryCheckError) as exc:
            check_memory_constraints(fn)
        diags = exc.value.diagnostics
        assert diags, "expected at least one diagnostic"
        for d in diags:
            assert d.code == "NCL102"
            assert d.line == 3, f"diagnostic lost its location: {d}"
            assert d.col > 0

    def test_ordering_violation_located(self):
        fn = self._prep(
            "_net_ int m1[64]; _net_ int m2[64];\n"
            "_kernel(1) void a(int x, int &r) {\n"
            "  int t;\n"
            "  if (x > 10) { t = m1[0]; t = m2[t & 63]; }\n"
            "  else        { t = m2[0]; t = m1[t & 63]; }\n"
            "  r = t; }"
        )
        with pytest.raises(MemoryCheckError) as exc:
            check_memory_constraints(fn)
        assert any(
            d.code == "NCL104" and d.line in (4, 5) for d in exc.value.diagnostics
        )

    def test_engine_mode_collects_instead_of_raising(self):
        from repro.analysis import DiagnosticEngine

        fn = self._prep(self.SAME_PATH)
        engine = DiagnosticEngine()
        check_memory_constraints(fn, engine=engine)  # must not raise
        assert [d.code for d in engine.diagnostics] == ["NCL102"]
        assert engine.errors
