"""P4XOS failure paths: leader loss and duplicate messages.

The happy path (sequencing, majority, acceptor loss) lives in
``test_apps.py``; this file covers what happens when the *leader* dies
and when messages are duplicated at each stage of the chain:

* a dead leader stops sequencing (no new instances), but instances whose
  PHASE2A already left it still reach consensus — the leader is not on
  the acceptor -> learner path;
* duplicated PHASE2A/PHASE2B packets are idempotent: the acceptor's
  ``VRound`` max-vote and the learner's ``VoteHistory`` bit ensure one
  delivery per instance no matter how many copies arrive;
* a duplicated *client proposal* is NOT deduplicated — the leader
  sequences every request into a fresh instance by design (at-least-once
  sequencing; request dedup belongs to a layer above, e.g. the
  at-most-once reply cache in :mod:`repro.rpc`).
"""

from __future__ import annotations

from repro.apps.paxos import (
    ACCEPTOR_DEVS,
    LEADER_DEV,
    LEARNER_DEV,
    build_paxos_cluster,
)
from repro.chaos.inject import ChaosController
from repro.chaos.plan import ChaosPlan, LinkFaults


class TestLeaderFailure:
    def test_dead_leader_stops_sequencing(self):
        px = build_paxos_cluster()
        for i in range(3):
            px.client.propose([i])
        px.network.sim.run()
        assert len(px.app.deliveries) == 3
        px.network.crash_switch(LEADER_DEV)
        for i in range(3, 5):
            px.client.propose([i])
        px.network.sim.run()
        # No path to a sequencer: the late proposals are lost, and the
        # earlier instances are untouched.
        assert len(px.app.deliveries) == 3
        assert {tuple(d.value[:1]) for d in px.app.deliveries} == {
            (0,), (1,), (2,)
        }

    def test_inflight_instance_survives_leader_crash(self):
        # Once PHASE2A has been multicast, the leader is out of the
        # protocol: acceptors and the learner finish the instance alone.
        px = build_paxos_cluster()
        px.client.propose([7, 8, 9])
        px.network.sim.at(4_000, lambda: px.network.crash_switch(LEADER_DEV))
        px.network.sim.run()
        assert len(px.app.deliveries) == 1
        assert px.app.deliveries[0].value[:3] == [7, 8, 9]

    def test_crash_before_sequencing_loses_the_proposal(self):
        # The converse bound for the test above: crash while the request
        # is still on the client -> leader hop and nothing is delivered.
        px = build_paxos_cluster()
        px.client.propose([7])
        px.network.sim.at(1_000, lambda: px.network.crash_switch(LEADER_DEV))
        px.network.sim.run()
        assert not px.app.deliveries


class TestDuplicates:
    def _duplicating_plan(self) -> ChaosPlan:
        # Duplicate every PHASE2A (leader -> acceptor) and PHASE2B
        # (acceptor -> learner) hop; leave the client -> leader hop
        # clean so the proposal itself is sequenced exactly once.
        dup = LinkFaults(duplicate=1.0)
        links = {}
        for a in ACCEPTOR_DEVS:
            links[f"d{LEADER_DEV}-d{a}"] = dup
            links[f"d{a}-d{LEARNER_DEV}"] = dup
        return ChaosPlan(seed=9, links=links)

    def test_duplicate_phase2a_and_phase2b_are_idempotent(self):
        px = build_paxos_cluster()
        ChaosController(px.network, self._duplicating_plan()).arm()
        for i in range(6):
            px.client.propose([10 + i])
        px.network.sim.run()
        m = px.network.metrics
        assert m.total("chaos.duplicated") > 0
        # Every duplicated vote re-ORs an already-set VoteHistory bit, so
        # popcount crosses MAJORITY exactly once per instance.
        assert len(px.app.deliveries) == 6
        instances = [d.instance for d in px.app.deliveries]
        assert len(set(instances)) == 6
        assert {tuple(d.value[:1]) for d in px.app.deliveries} == {
            (10 + i,) for i in range(6)
        }

    def test_duplicate_proposal_is_resequenced_not_deduplicated(self):
        # The leader allocates a fresh instance for every REQUEST it
        # sees: duplicating a proposal yields two consensus instances
        # carrying the same value.  That is the documented contract —
        # at-most-once semantics are an end-to-end concern.
        px = build_paxos_cluster()
        plan = ChaosPlan(
            seed=9,
            links={f"d{LEADER_DEV}-h1": LinkFaults(duplicate=1.0)},
        )
        ChaosController(px.network, plan).arm()
        px.client.propose([42])
        px.network.sim.run()
        assert len(px.app.deliveries) == 2
        assert len({d.instance for d in px.app.deliveries}) == 2
        assert all(d.value[0] == 42 for d in px.app.deliveries)
