"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro import hashing
from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.ir.instructions import AtomicOp
from repro.ir.module import GlobalVar, MemSpace
from repro.ir.types import ArrayShape, IntType, U16, U8
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import PassOptions, run_default_pipeline
from repro.runtime.message import FieldSpec, KernelSpec, Message, pack, unpack
from repro.tofino.phv import PhvAllocator, PhvError

widths = st.sampled_from([1, 8, 16, 32, 64])
small_ints = st.integers(min_value=-(1 << 70), max_value=1 << 70)


class TestIntTypeProperties:
    @given(widths, st.booleans(), small_ints)
    def test_wrap_is_idempotent_and_in_range(self, w, signed, v):
        ty = IntType(w, signed)
        wrapped = ty.wrap(v)
        assert ty.min_value <= wrapped <= ty.max_value
        assert ty.wrap(wrapped) == wrapped

    @given(widths, small_ints)
    def test_wrap_is_congruent_mod_2w(self, w, v):
        ty = IntType(w)
        assert (ty.wrap(v) - v) % (1 << w) == 0

    @given(widths, st.booleans(), small_ints)
    def test_saturate_in_range_and_fixed_point(self, w, signed, v):
        ty = IntType(w, signed)
        s = ty.saturate(v)
        assert ty.min_value <= s <= ty.max_value
        assert ty.saturate(s) == s
        if ty.min_value <= v <= ty.max_value:
            assert s == v


class TestHashProperties:
    keys = st.integers(min_value=0, max_value=(1 << 64) - 1)

    @given(keys)
    def test_hashes_deterministic_and_in_range(self, k):
        for name, fn in hashing.HASH_FUNCTIONS.items():
            a, b = fn(k, 64), fn(k, 64)
            assert a == b
            out_bits = {"crc16": 16, "crc32": 32, "crc64": 64, "xor16": 16, "identity": 64}[name]
            assert 0 <= a < (1 << out_bits)

    @given(keys, st.integers(min_value=1, max_value=32))
    def test_truncate_bounds(self, k, bits):
        assert 0 <= hashing.truncate(hashing.crc32(k, 64), bits) < (1 << bits)

    @given(st.lists(keys, min_size=2, max_size=50, unique=True))
    def test_crc32_rarely_collides_on_small_sets(self, ks):
        digests = {hashing.crc32(k, 64) for k in ks}
        assert len(digests) >= len(ks) - 1  # allow a freak collision


class TestCodecProperties:
    @st.composite
    def spec_and_values(draw):
        n = draw(st.integers(min_value=1, max_value=6))
        fields = []
        values = []
        for i in range(n):
            w = draw(st.sampled_from([8, 16, 32, 64]))
            count = draw(st.integers(min_value=1, max_value=8))
            fields.append(FieldSpec(f"f{i}", w, count))
            if count == 1:
                values.append(draw(st.integers(min_value=0, max_value=(1 << w) - 1)))
            else:
                values.append(
                    draw(
                        st.lists(
                            st.integers(min_value=0, max_value=(1 << w) - 1),
                            min_size=count,
                            max_size=count,
                        )
                    )
                )
        return KernelSpec(1, tuple(fields)), values

    @given(spec_and_values())
    def test_pack_unpack_roundtrip(self, sv):
        spec, values = sv
        msg = Message(src=3, dst=4, comp=1, to=2)
        raw = pack(msg, spec, values)
        assert len(raw) == spec.size
        back, out = unpack(raw, spec)
        assert out == values
        assert (back.src, back.dst, back.to) == (3, 4, 2)


class TestAtomicProperties:
    @given(
        st.sampled_from([AtomicOp.ADD, AtomicOp.SUB, AtomicOp.AND, AtomicOp.OR, AtomicOp.XOR]),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.booleans(),
    )
    def test_old_new_consistency(self, op, init, operand, return_new):
        gv = GlobalVar("m", U16, ArrayShape((1,)), MemSpace.NET)
        state = GlobalState()
        state.declare(gv)
        state.write(gv, [0], init)
        result = state.atomic(gv, [0], op, operand, return_new=return_new)
        final = state.read(gv, [0])
        expected_new = {
            AtomicOp.ADD: (init + operand) & 0xFFFF,
            AtomicOp.SUB: (init - operand) & 0xFFFF,
            AtomicOp.AND: init & operand,
            AtomicOp.OR: init | operand,
            AtomicOp.XOR: init ^ operand,
        }[op]
        assert final == expected_new
        assert result == (expected_new if return_new else init)

    @given(st.integers(min_value=0, max_value=0xFF), st.integers(min_value=0, max_value=0xFF))
    def test_guarded_off_never_writes(self, init, operand):
        gv = GlobalVar("m", U8, ArrayShape((1,)), MemSpace.NET)
        state = GlobalState()
        state.declare(gv)
        state.write(gv, [0], init)
        out = state.atomic(gv, [0], AtomicOp.ADD, operand, cond=0, return_new=True)
        assert out == init and state.read(gv, [0]) == init


class TestCompilerSemanticsProperty:
    """The optimization pipeline must preserve kernel behavior."""

    SRC = (
        "_net_ unsigned acc[8];\n"
        "_kernel(1) void k(unsigned a, unsigned b, unsigned &r, unsigned &s) {\n"
        "  unsigned m = a;\n"
        "  if (b < m) m = b;\n"
        "  if (a > 100) { r = ncl::atomic_add_new(&acc[a & 7], m); }\n"
        "  else { r = m * 3 + (a ^ b); }\n"
        "  s = (a < b) ? a - b : b - a;\n"
        "}"
    )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_optimized_matches_reference(self, a, b):
        # Reference: unoptimized lowering.
        ref_mod = lower_to_ir(analyze(parse_source(self.SRC)))
        ref_msg = KernelMessage({"a": a, "b": b, "r": 0, "s": 0})
        IRInterpreter(ref_mod, GlobalState()).run_kernel(ref_mod.kernels()[0], ref_msg)

        opt_mod = lower_to_ir(analyze(parse_source(self.SRC)))
        run_default_pipeline(opt_mod, PassOptions())
        opt_msg = KernelMessage({"a": a, "b": b, "r": 0, "s": 0})
        IRInterpreter(opt_mod, GlobalState()).run_kernel(opt_mod.kernels()[0], opt_msg)

        assert ref_msg.fields == opt_msg.fields


class TestPhvProperties:
    @given(st.lists(st.integers(min_value=1, max_value=64), max_size=40))
    def test_allocation_covers_demand(self, fields):
        try:
            rep = PhvAllocator().allocate(fields, [], [])
        except PhvError:
            return
        assert rep.used_bits >= sum(fields)
        assert 0.0 <= rep.occupancy <= 1.0
