"""Property tests (hypothesis) on the collective's block quantization.

The wire contract of ``repro.collective``: every worker quantizes a
chunk against the *negotiated* maximum biased exponent ``e*``, the
switch sums the two's-complement mantissas with wrapping u32 adds, and
dequantizing the total against ``e*`` lands within
``N * 2^(e* - EXP_BIAS - MANTISSA_BITS - 1)`` of the exact float sum.
These tests pin that bound down over the whole float32 range — negative
values, zeros, and denormal-ish magnitudes included.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.collective import (
    EXP_BIAS,
    MANTISSA_BITS,
    chunk_exponent,
    dequantize_chunk,
    quantization_error_bound,
    quantize_chunk,
)

# float32-representable values (subnormals included); saturation only
# kicks in beyond |x| >= 2^127, which width=32 already excludes for the
# negotiated exponent.
f32 = st.floats(width=32, allow_nan=False, allow_infinity=False)
chunks = st.lists(f32, min_size=1, max_size=16)

_U32 = 1 << 32


def _wrapping_sum(columns: list[list[int]]) -> list[int]:
    """What the switch computes: element-wise wrapping u32 addition."""
    out = [0] * len(columns[0])
    for qs in columns:
        for i, q in enumerate(qs):
            out[i] = (out[i] + q) % _U32
    return out


class TestRoundTrip:
    @given(chunks)
    def test_dequantize_quantize_error_is_bounded(self, values):
        e = chunk_exponent(values)
        back = dequantize_chunk(quantize_chunk(values, e), e)
        bound = quantization_error_bound(e, num_workers=1)
        for x, y in zip(values, back):
            assert abs(y - x) <= bound, (x, y, e)

    @given(chunks)
    def test_exact_zero_chunks_round_trip_exactly(self, values):
        zeros = [0.0 for _ in values]
        e = chunk_exponent(zeros)
        assert e == 0
        assert dequantize_chunk(quantize_chunk(zeros, e), e) == zeros

    @given(chunks, st.integers(min_value=0, max_value=40))
    def test_bound_holds_against_any_higher_exponent(self, values, bump):
        """A negotiated e* above the chunk's own maximum (another worker
        had larger values) only loosens the scale — never the bound."""
        e = min(255, chunk_exponent(values) + bump)
        back = dequantize_chunk(quantize_chunk(values, e), e)
        bound = quantization_error_bound(e, num_workers=1)
        for x, y in zip(values, back):
            assert abs(y - x) <= bound, (x, y, e)

    @given(st.lists(st.floats(width=32, allow_nan=False, allow_infinity=False,
                              min_value=-(2.0 ** -126), max_value=2.0 ** -126),
                    min_size=1, max_size=16))
    def test_denormal_ish_magnitudes(self, values):
        """Tiny values clamp the biased exponent at 0; rounding error is
        still at most half an ulp of that floor scale."""
        e = chunk_exponent(values)
        back = dequantize_chunk(quantize_chunk(values, e), e)
        bound = quantization_error_bound(e, num_workers=1)
        for x, y in zip(values, back):
            assert abs(y - x) <= bound, (x, y, e)


class TestNetworkSum:
    @settings(deadline=None)
    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.lists(
                st.lists(f32, min_size=4, max_size=4), min_size=n, max_size=n
            )
        )
    )
    def test_switch_sum_is_within_per_worker_bounds(self, worker_chunks):
        """The in-network path end to end: every worker quantizes against
        the negotiated max exponent, the switch wrapping-adds, and the
        dequantized total is within N half-ulps of the exact sum."""
        n = len(worker_chunks)
        estar = max(chunk_exponent(c) for c in worker_chunks)
        total = _wrapping_sum([quantize_chunk(c, estar) for c in worker_chunks])
        got = dequantize_chunk(total, estar)
        bound = quantization_error_bound(estar, num_workers=n)
        for i in range(4):
            exact = math.fsum(c[i] for c in worker_chunks)
            assert abs(got[i] - exact) <= bound, (i, got[i], exact, estar)

    def test_wrapping_u32_add_is_signed_add(self):
        """Negative mantissas ride two's-complement: the switch's
        unsigned wrap implements signed addition exactly."""
        a = quantize_chunk([-1.5, 2.5, -0.25, 0.0], 130)
        b = quantize_chunk([1.5, -2.5, 0.75, 0.0], 130)
        got = dequantize_chunk(_wrapping_sum([a, b]), 130)
        assert got == [0.0, 0.0, 0.5, 0.0]


class TestExponent:
    @given(chunks)
    def test_exponent_strictly_bounds_every_value(self, values):
        e = chunk_exponent(values)
        if any(values):
            # |x| < 2^(e - EXP_BIAS) unless the clamp at 0/255 kicked in.
            unclamped = max(math.frexp(x)[1] for x in values if x) + EXP_BIAS
            if 0 <= unclamped <= 255:
                for x in values:
                    assert abs(x) < math.ldexp(1.0, e - EXP_BIAS)

    @given(chunks, chunks)
    def test_exponent_is_monotone_under_max(self, a, b):
        assert chunk_exponent(a + b) == max(chunk_exponent(a), chunk_exponent(b))

    def test_constants_keep_64_worker_sums_exact(self):
        # N * 2^MANTISSA_BITS must stay below 2^31 for exactness.
        assert 64 * (1 << MANTISSA_BITS) <= 1 << 31
