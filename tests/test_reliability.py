"""repro.reliability: dedup windows, the wire trailer, reliable channels,
device-side at-most-once + replay, journaling, and failover."""

import select
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Link, Network
from repro.reliability import (
    BackoffPolicy,
    DedupWindow,
    FailoverManager,
    ReliableChannel,
    ReliableNetCLDevice,
    ReplayCache,
    ReplicatedConnection,
)
from repro.runtime import DeviceConnection, ForwardKind, KernelSpec, Message, pack
from repro.runtime.message import (
    NetCLPacket,
    REL_ACK,
    REL_DATA,
    REL_FLAG_ACK_REQ,
    REL_FLAG_REPLY,
    REL_TRAILER_SIZE,
    unpack,
)
from repro.runtime.udp import UdpHost, UdpSwitch

ECHO = "_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; return ncl::reflect(); }"
PASS = "_kernel(1) void k(unsigned x, unsigned &y) { }"


def _reliable(src=ECHO, dev_id=1, **kw):
    cp = compile_netcl(src, dev_id)
    dev = ReliableNetCLDevice(dev_id, cp.module, cp.kernels(), **kw)
    return dev, KernelSpec.from_kernel(cp.kernels()[0])


def _data_packet(spec, seq, *, src=1, dst=1, to=1, x=10, flags=0):
    msg = Message(src=src, dst=dst, comp=1, to=to)
    pkt = NetCLPacket.from_wire(pack(msg, spec, [x, 0]))
    pkt.stamp_reliability(REL_DATA, seq, flags)
    return pkt


class TestDedupWindow:
    def test_fresh_sequences_accepted_once(self):
        w = DedupWindow(64)
        assert w.check_and_add(1, 5)
        assert not w.check_and_add(1, 5)
        assert w.seen(1, 5) and not w.seen(1, 6)

    def test_senders_are_independent(self):
        w = DedupWindow(64)
        assert w.check_and_add(1, 5)
        assert w.check_and_add(2, 5)

    def test_out_of_order_within_window(self):
        w = DedupWindow(64)
        assert w.check_and_add(1, 50)
        assert w.check_and_add(1, 20)  # older but unseen: accepted
        assert not w.check_and_add(1, 20)

    def test_beyond_window_is_conservatively_dup(self):
        w = DedupWindow(16)
        assert w.check_and_add(1, 100)
        assert not w.check_and_add(1, 100 - 16)
        assert w.seen(1, 100 - 16)

    def test_ordered_mode_enforces_fifo(self):
        w = DedupWindow(64, ordered=True)
        assert w.check_and_add(1, 10)
        assert not w.check_and_add(1, 5)  # never seen, but below high
        assert w.stale_rejected == 1
        assert w.seen(1, 5)
        assert w.check_and_add(1, 11)

    def test_reset_and_validation(self):
        w = DedupWindow(8)
        w.check_and_add(1, 1)
        w.reset()
        assert w.check_and_add(1, 1) and w.tracked_senders == 1
        with pytest.raises(ValueError):
            DedupWindow(0)

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_property_at_most_once(self, seqs):
        # However duplicated/reordered the arrival stream, each sequence
        # number is accepted at most once.
        w = DedupWindow(64)
        accepted = [s for s in seqs if w.check_and_add(7, s)]
        assert len(accepted) == len(set(accepted))
        assert set(accepted) == set(seqs)  # window covers the whole range

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_property_ordered_accepts_increasing_subsequence(self, seqs):
        w = DedupWindow(64, ordered=True)
        accepted = [s for s in seqs if w.check_and_add(7, s)]
        assert accepted == sorted(set(accepted))


class TestReplayCache:
    def test_put_get_and_eviction(self):
        c = ReplayCache(capacity=2)
        c.put(1, 1, "a")
        c.put(1, 2, "b")
        c.put(1, 3, "c")
        assert c.get(1, 1) is None  # evicted
        assert c.get(1, 2) == "b" and c.get(1, 3) == "c" and len(c) == 2

    def test_overwrite_refreshes(self):
        c = ReplayCache(capacity=2)
        c.put(1, 1, "a")
        c.put(1, 2, "b")
        c.put(1, 1, "a2")
        c.put(1, 3, "c")
        assert c.get(1, 1) == "a2" and c.get(1, 2) is None


class TestWireTrailer:
    def test_roundtrip_preserves_trailer(self):
        _, spec = _reliable()
        pkt = _data_packet(spec, 42, flags=REL_FLAG_ACK_REQ)
        back = NetCLPacket.from_wire(pkt.to_wire())
        assert back.rel_kind == REL_DATA
        assert back.rel_seq == 42
        assert back.rel_flags == REL_FLAG_ACK_REQ
        assert back.reliability_intact

    def test_legacy_parser_skips_trailer(self):
        # The header's len field delimits the data section, so a trailer
        # is invisible to pre-reliability unpacking.
        from repro.runtime.message import unpack

        _, spec = _reliable()
        pkt = _data_packet(spec, 7, x=99)
        _, values = unpack(pkt.to_wire(), spec)
        assert values[0] == 99

    def test_trailer_adds_fixed_bytes(self):
        _, spec = _reliable()
        plain = NetCLPacket.from_wire(pack(Message(src=1, dst=1, comp=1, to=1), spec, [1, 0]))
        stamped = _data_packet(spec, 1)
        assert len(stamped.to_wire()) == len(plain.to_wire()) + REL_TRAILER_SIZE

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_property_any_data_corruption_detected(self, xor):
        _, spec = _reliable()
        pkt = _data_packet(spec, 3, x=0xAB)
        data = bytearray(pkt.data)
        data[0] ^= xor
        pkt.data = bytes(data)
        assert pkt.reliability_intact == (xor == 0)

    def test_restamp_after_rewrite(self):
        _, spec = _reliable()
        pkt = _data_packet(spec, 3)
        pkt.data = bytes(len(pkt.data))
        assert not pkt.reliability_intact
        pkt.restamp_crc()
        assert pkt.reliability_intact


class TestReliableDevice:
    def test_accept_then_dedup_with_replay(self):
        dev, spec = _reliable()
        d1 = dev.process(_data_packet(spec, 1))
        assert d1.kind == ForwardKind.TO_HOST
        d2 = dev.process(_data_packet(spec, 1))  # duplicate
        assert d2.kind == ForwardKind.TO_HOST  # replayed, not recomputed
        m = dev.metrics
        assert m.total("reliability.dup_drops") == 1
        assert m.total("reliability.replays") == 1
        assert m.total("reliability.accepted") == 1

    def test_replayed_response_is_a_fresh_copy(self):
        dev, spec = _reliable()
        d1 = dev.process(_data_packet(spec, 1))
        d2 = dev.process(_data_packet(spec, 1))
        assert d2.packet is not d1.packet

    def test_corrupt_data_dropped(self):
        dev, spec = _reliable()
        pkt = _data_packet(spec, 1)
        pkt.data = bytes([pkt.data[0] ^ 0xFF]) + pkt.data[1:]
        d = dev.process(pkt)
        assert d.kind == ForwardKind.DROP
        assert dev.metrics.total("reliability.corrupt_drops") == 1

    def test_ack_generated_through_control_channel(self):
        dev, spec = _reliable(ack=True)
        dev.process(_data_packet(spec, 9, src=4, flags=REL_FLAG_ACK_REQ))
        extras = dev.drain_control()
        assert len(extras) == 1
        ack = extras[0]
        assert ack.kind == ForwardKind.TO_HOST and ack.target == 4
        assert ack.packet.rel_kind == REL_ACK and ack.packet.rel_seq == 9
        assert dev.drain_control() == []  # drained

    def test_ordered_mode_drops_stale_without_replay(self):
        dev, spec = _reliable(ordered=True)
        dev.process(_data_packet(spec, 10))
        d = dev.process(_data_packet(spec, 4))  # unseen but below high
        assert d.kind == ForwardKind.DROP
        assert dev.metrics.total("reliability.stale_drops") == 1
        assert dev.metrics.total("reliability.replays") == 0

    def test_transit_packets_bypass_reliability(self):
        dev, spec = _reliable(dev_id=1)
        pkt = _data_packet(spec, 1, to=5, dst=2)  # addressed elsewhere
        dev.process(pkt)
        dev.process(pkt.copy())  # same seq twice: still not deduped
        assert dev.metrics.total("reliability.dup_drops") == 0

    def test_reset_state_clears_dedup(self):
        dev, spec = _reliable()
        dev.process(_data_packet(spec, 1))
        dev.reset_state()
        d = dev.process(_data_packet(spec, 1))
        assert d.kind == ForwardKind.TO_HOST
        assert dev.metrics.total("reliability.dup_drops") == 0


def _echo_network(**channel_kw):
    dev, spec = _reliable()
    net = Network(seed=3, metrics=dev.metrics)
    net.add_switch(dev, processing_ns=200)
    host = net.add_host(1)
    net.link(HOST(1), DEVICE(1), Link(latency_ns=500))
    got = []
    host.on_receive = lambda pkt, now: got.append(pkt)
    ch = ReliableChannel(net, host, spec, target_device=1, **channel_kw)
    return net, host, ch, got


class TestReliableChannel:
    def test_request_completes_on_reflected_reply(self):
        net, host, ch, got = _echo_network()
        done = []
        ch.request([5, 0], dst=1, on_complete=done.append)
        net.sim.run(until_ns=5_000_000)
        assert done == [1] and ch.outstanding == 0
        assert len(got) == 1  # reply delivered to the app exactly once
        assert net.metrics.total("reliability.ch.completed.h1") == 1

    def test_retransmission_recovers_from_outage(self):
        net, host, ch, got = _echo_network(
            policy=BackoffPolicy(base_timeout_ns=100_000, max_retries=10)
        )
        net.set_link_up(HOST(1), DEVICE(1), False)
        ch.request([5, 0], dst=1)
        net.sim.at(400_000, lambda: net.set_link_up(HOST(1), DEVICE(1), True))
        net.sim.run(until_ns=10_000_000)
        assert ch.outstanding == 0 and len(got) == 1
        assert net.metrics.total("reliability.ch.retransmits.h1") >= 1

    def test_retries_exhausted_fires_on_fail(self):
        net, host, ch, got = _echo_network(
            policy=BackoffPolicy(base_timeout_ns=50_000, max_retries=2)
        )
        net.set_link_up(HOST(1), DEVICE(1), False)
        failed = []
        ch.request([5, 0], dst=1, on_fail=failed.append)
        net.sim.run(until_ns=20_000_000)
        assert failed == [1] and ch.outstanding == 0
        assert net.metrics.total("reliability.ch.expired.h1") == 1

    def test_reply_completes_tracking_only_request(self):
        net, host, ch, got = _echo_network()
        seq = ch.request([5, 0], dst=1, retransmit=False)
        net.sim.run(until_ns=5_000_000)
        assert seq not in ch.pending
        assert net.metrics.total("reliability.ch.completed.h1") == 1

    def test_ack_completes_tracking_only_request(self):
        # A pass kernel addressed to a host that does not exist: the only
        # thing coming back is the device ACK, which must complete a
        # tracking-only (retransmit=False) request.
        dev, spec = _reliable(PASS)
        net = Network(seed=3, metrics=dev.metrics)
        net.add_switch(dev, processing_ns=200)
        host = net.add_host(1)
        net.link(HOST(1), DEVICE(1), Link(latency_ns=500))
        ch = ReliableChannel(net, host, spec, target_device=1)
        seq = ch.request([5, 0], dst=99, retransmit=False)
        net.sim.run(until_ns=5_000_000)
        assert seq not in ch.pending
        assert net.metrics.total("reliability.ch.acks.h1") == 1

    def test_duplicate_delivery_suppressed(self):
        net, host, ch, got = _echo_network()
        ch.request([5, 0], dst=1)
        net.sim.run(until_ns=2_000_000)
        # Re-inject a copy of the reply the host already consumed.
        dup = got[0].copy()
        host.deliver(dup)
        net.sim.run(until_ns=5_000_000)
        assert len(got) == 1
        assert net.metrics.total("reliability.ch.dup_rx_dropped.h1") == 1

    def test_corrupt_reply_dropped_at_host(self):
        net, host, ch, got = _echo_network()
        ch.request([5, 0], dst=1)
        net.sim.run(until_ns=2_000_000)
        bad = got[0].copy()
        bad.stamp_reliability(REL_DATA, 999, 0)
        bad.data = bytes([bad.data[0] ^ 1]) + bad.data[1:]
        host.deliver(bad)
        net.sim.run(until_ns=5_000_000)
        assert len(got) == 1
        assert net.metrics.total("reliability.ch.corrupt_rx_dropped.h1") == 1

    def test_retarget_resends_pending_to_standby(self):
        primary, spec = _reliable(dev_id=1)
        cp2 = compile_netcl(ECHO, 2)
        standby = ReliableNetCLDevice(2, cp2.module, cp2.kernels(), metrics=primary.metrics)
        net = Network(seed=3, metrics=primary.metrics)
        net.add_switch(primary, processing_ns=200)
        net.add_switch(standby, processing_ns=200)
        host = net.add_host(1)
        net.link(HOST(1), DEVICE(1), Link(latency_ns=500))
        net.link(HOST(1), DEVICE(2), Link(latency_ns=500))
        got = []
        host.on_receive = lambda pkt, now: got.append(pkt)
        ch = ReliableChannel(net, host, spec, target_device=1)
        net.crash_switch(1)
        ch.request([5, 0], dst=1)
        tracked = ch.request([6, 0], dst=1, retransmit=False)
        net.sim.at(200_000, lambda: ch.retarget(2))
        net.sim.run(until_ns=10_000_000)
        assert ch.outstanding == 0 and len(got) == 1
        assert tracked not in ch.pending  # tracking-only pendings discarded

    def test_reply_cache_answers_duplicated_request(self):
        # Client h1 -> device (pass) -> server h2; the server's channel
        # replays its cached reply when the request is duplicated.
        dev, spec = _reliable(PASS)
        net = Network(seed=3, metrics=dev.metrics)
        net.add_switch(dev, processing_ns=200)
        h1, h2 = net.add_host(1), net.add_host(2)
        net.link(HOST(1), DEVICE(1), Link(latency_ns=500))
        net.link(HOST(2), DEVICE(1), Link(latency_ns=500))
        got1 = []
        h1.on_receive = lambda pkt, now: got1.append(pkt)
        ch1 = ReliableChannel(net, h1, spec, target_device=1)

        def serve(pkt, now):
            ch2.send_reply(pkt, [0, 77])

        h2.on_receive = serve
        ch2 = ReliableChannel(net, h2, spec, target_device=1)
        seq = ch1.request([5, 0], dst=2)
        net.sim.run(until_ns=3_000_000)
        assert len(got1) == 1
        # Duplicate the request on the wire: the server must not re-run
        # the app handler, but must re-answer.
        dup = _data_packet(spec, seq, src=1, dst=2, to=1, x=5, flags=REL_FLAG_ACK_REQ)
        h1.send_packet(dup)
        net.sim.run(until_ns=8_000_000)
        assert net.metrics.total("reliability.ch.reply_replays.h2") == 1
        replies = [p for p in got1 if p.rel_kind == REL_DATA]
        assert all(p.rel_flags & REL_FLAG_REPLY for p in replies)


    def test_multi_fragment_reply_replayed_through_failover_retarget(self):
        # Client h1 -> primary d1 (pass) -> server h2; the server answers
        # with a three-fragment logical reply.  The primary dies with the
        # fragments in flight; failover retargets both channels at the
        # standby, the client's pending request is re-driven there, and
        # the server must replay the WHOLE cached reply (not just the
        # terminal fragment) without re-running the app handler.
        primary, spec = _reliable(PASS, dev_id=1)
        cp2 = compile_netcl(PASS, 2)
        standby = ReliableNetCLDevice(2, cp2.module, cp2.kernels(), metrics=primary.metrics)
        net = Network(seed=3, metrics=primary.metrics)
        net.add_switch(primary, processing_ns=200)
        net.add_switch(standby, processing_ns=200)
        h1, h2 = net.add_host(1), net.add_host(2)
        # The standby path is slower, so pre-crash traffic (including the
        # reply fragments) deterministically rides the primary.
        for h in (1, 2):
            net.link(HOST(h), DEVICE(1), Link(latency_ns=10_000))
            net.link(HOST(h), DEVICE(2), Link(latency_ns=40_000))
        got = []
        h1.on_receive = lambda pkt, now: got.append(pkt)
        ch1 = ReliableChannel(net, h1, spec, target_device=1, ack=False)
        executions = []

        def serve(pkt, now):
            executions.append(pkt.rel_seq)
            ch2.send_reply(pkt, [0, 100], more=True)
            ch2.send_reply(pkt, [1, 101], more=True)
            ch2.send_reply(pkt, [2, 102])

        h2.on_receive = serve
        ch2 = ReliableChannel(net, h2, spec, target_device=1, ack=False)
        FailoverManager(
            net, 1, 2, heartbeat_ns=50_000, channels=[ch1, ch2]
        ).start()
        seq = ch1.request([5, 0], dst=2)
        # Crash after the request reached h2 but before any fragment got
        # back through d1: the whole reply is lost on the dead switch.
        net.sim.at(28_000, lambda: net.crash_switch(1))
        net.sim.run(until_ns=20_000_000)
        assert executions == [seq], "handler must run exactly once"
        assert net.metrics.total("reliability.ch.reply_replays.h2") == 1
        assert ch1.target_device == 2 and ch2.target_device == 2
        fragments = [p for p in got if p.rel_kind == REL_DATA]
        idx = sorted(unpack(p.to_wire(), spec)[1][0] for p in fragments)
        assert idx == [0, 1, 2], "every cached fragment must be replayed"
        assert ch1.outstanding == 0  # terminal fragment completed the seq


MANAGED_TABLE = (
    "_managed_ unsigned regs[8];\n"
    "_managed_ _lookup_ ncl::kv<unsigned,unsigned> t[8];\n"
    "_kernel(1) void k(unsigned key, unsigned &v, unsigned &hit) {\n"
    "  hit = ncl::lookup(t, key, v); }"
)


class TestReplicatedConnection:
    def _pair(self):
        cp = compile_netcl(MANAGED_TABLE, 1)
        primary = ReliableNetCLDevice(1, cp.module, cp.kernels())
        cp2 = compile_netcl(MANAGED_TABLE, 2)
        standby = ReliableNetCLDevice(2, cp2.module, cp2.kernels())
        return ReplicatedConnection(DeviceConnection(primary)), standby

    def test_journal_compacts_by_key(self):
        rc, _ = self._pair()
        rc.managed_write("regs", 1, index=0)
        rc.managed_write("regs", 2, index=0)  # overwrites the same key
        rc.managed_write("regs", 3, index=1)
        assert rc.journal_size == 2

    def test_remove_erases_journal_entry(self):
        rc, _ = self._pair()
        rc.managed_insert("t", 5, value=50)
        rc.managed_remove("t", 5)
        assert rc.journal_size == 0

    def test_modify_journals_final_value(self):
        rc, standby = self._pair()
        rc.managed_insert("t", 5, value=50)
        assert rc.managed_modify("t", 5, 51)
        rc.managed_write("regs", 9, index=3)
        n = rc.replay(DeviceConnection(standby))
        assert n == 2
        conn2 = DeviceConnection(standby)
        assert conn2.managed_read("regs", index=3) == 9
        assert conn2.entries("t")[0].value == 51

    def test_retarget_redirects_future_ops(self):
        rc, standby = self._pair()
        conn2 = DeviceConnection(standby)
        rc.retarget(conn2)
        rc.managed_write("regs", 4, index=0)
        assert conn2.managed_read("regs", index=0) == 4


class TestFailoverManager:
    def test_promotes_standby_and_replays_journal(self):
        cp1 = compile_netcl(MANAGED_TABLE, 1)
        cp2 = compile_netcl(MANAGED_TABLE, 2)
        primary = ReliableNetCLDevice(1, cp1.module, cp1.kernels())
        standby = ReliableNetCLDevice(2, cp2.module, cp2.kernels(), metrics=primary.metrics)
        net = Network(seed=5, metrics=primary.metrics)
        net.add_switch(primary)
        net.add_switch(standby)
        host = net.add_host(1)
        net.link(HOST(1), DEVICE(1), Link())
        net.link(HOST(1), DEVICE(2), Link())
        rc = ReplicatedConnection(DeviceConnection(primary))
        rc.managed_insert("t", 5, value=50)
        rc.managed_write("regs", 7, index=2)
        cp_spec = KernelSpec.from_kernel(cp1.kernels()[0])
        ch = ReliableChannel(net, host, cp_spec, target_device=1)
        hooks = []
        mgr = FailoverManager(
            net, 1, 2,
            heartbeat_ns=50_000,
            replicated=rc,
            channels=[ch],
            on_failover=hooks.append,
        ).start()
        net.sim.at(300_000, lambda: net.crash_switch(1))
        net.sim.run(until_ns=1_000_000)
        assert mgr.failed_over and mgr.active_id == 2
        assert hooks == [mgr]
        assert ch.target_device == 2
        conn2 = DeviceConnection(standby)
        assert conn2.managed_read("regs", index=2) == 7
        assert conn2.entries("t")[0].value == 50
        assert net.metrics.total("reliability.failover.count") == 1
        assert net.metrics.total("reliability.failover.ops_replayed") == 2

    def test_no_failover_while_primary_healthy(self):
        cp = compile_netcl(PASS, 1)
        dev = ReliableNetCLDevice(1, cp.module, cp.kernels())
        net = Network(seed=5, metrics=dev.metrics)
        net.add_switch(dev)
        net.add_host(1)
        net.link(HOST(1), DEVICE(1), Link())
        mgr = FailoverManager(net, 1, 2, heartbeat_ns=50_000).start()
        net.sim.run(until_ns=500_000)
        assert not mgr.failed_over and mgr.active_id == 1
        assert net.metrics.total("reliability.failover.heartbeats") >= 5


class TestUdpTransport:
    def test_recv_timeout_does_not_mutate_socket_timeout(self):
        with UdpHost(1) as host:
            cp = compile_netcl(ECHO, 1)
            spec = KernelSpec.from_kernel(cp.kernels()[0])
            before = host.sock.gettimeout()
            with pytest.raises(socket.timeout):
                host.recv(spec, timeout=0.05)
            assert host.sock.gettimeout() == before

    def test_udp_switch_sends_ack_via_control_channel(self):
        dev, spec = _reliable(ack=True)
        with UdpSwitch(dev) as switch, UdpHost(1) as host:
            host.connect(switch)
            pkt = _data_packet(spec, 3, flags=REL_FLAG_ACK_REQ)
            host.sock.sendto(pkt.to_wire(), switch.endpoint.addr)
            kinds = set()
            for _ in range(2):
                ready, _w, _x = select.select([host.sock], [], [], 2.0)
                assert ready, "expected reply + ACK from the switch"
                raw, _ = host.sock.recvfrom(65535)
                kinds.add(NetCLPacket.from_wire(raw).rel_kind)
            assert kinds == {REL_DATA, REL_ACK}


class TestDeadlineTimers:
    """Retransmission timers re-arm by moving a deadline, not by
    cancelling and reallocating an event per transmit."""

    def test_rearm_reuses_live_timer_event(self):
        net, host, ch, got = _echo_network(
            policy=BackoffPolicy(base_timeout_ns=100_000, max_retries=10)
        )
        net.set_link_up(HOST(1), DEVICE(1), False)  # force retransmits
        seq = ch.request([5, 0], dst=1)
        p = ch.pending[seq]
        first_timer = p.timer
        first_deadline = p.deadline_ns
        # drive exactly past the first timeout: the retransmit re-arms by
        # pushing the deadline; the timer event object is replaced only
        # after it actually fires.
        net.sim.run(until_ns=first_deadline + 1)
        assert p.attempts == 1
        assert p.deadline_ns > first_deadline
        assert p.timer is not first_timer and p.timer is not None
        net.sim.run(until_ns=10_000_000)  # expire remaining retries

    def test_spurious_wake_does_not_retransmit_early(self):
        net, host, ch, got = _echo_network(
            policy=BackoffPolicy(base_timeout_ns=500_000, max_retries=3)
        )
        ch.request([5, 0], dst=1)
        net.sim.run(until_ns=5_000_000)
        # the exchange completed on the first attempt: the reply beat the
        # deadline, so the armed timer must die without retransmitting.
        assert ch.outstanding == 0
        assert net.metrics.total("reliability.ch.retransmits.h1") == 0
        assert net.sim.pending == 0

    def test_completion_cancels_deadline_timer(self):
        net, host, ch, got = _echo_network()
        seq = ch.request([5, 0], dst=1)
        p = ch.pending[seq]
        net.sim.run(until_ns=5_000_000)
        assert seq not in ch.pending
        assert p.timer is None or p.timer.cancelled
