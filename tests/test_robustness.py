"""Robustness: malformed input on every external surface."""

import socket

import pytest

from repro.core import compile_netcl
from repro.lang.errors import CompileError
from repro.p4.parser import P4ParseError, parse_p4
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.udp import UdpHost, UdpSwitch
from tests.conftest import MINI_KERNEL


class TestUdpGarbage:
    def test_switch_survives_garbage_datagrams(self):
        cp = compile_netcl(MINI_KERNEL, 1, program_name="mini")
        device = NetCLDevice(1, cp.module, cp.kernels())
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        with UdpSwitch(device) as switch:
            with UdpHost(1) as client:
                client.connect(switch)
                # junk first: too short, then random bytes
                client.sock.sendto(b"", switch.endpoint.addr)
                client.sock.sendto(b"\x01", switch.endpoint.addr)
                client.sock.sendto(b"Z" * 100, switch.endpoint.addr)
                # a real message still gets processed afterwards
                client.send(Message(src=1, dst=1, comp=1, to=1), spec, [3, 4, None])
                _, values = client.recv(spec)
                assert values[2] == 4  # atomic_add_new(0 + 4)

    def test_unknown_destination_silently_dropped(self):
        cp = compile_netcl(MINI_KERNEL, 1, program_name="mini")
        device = NetCLDevice(1, cp.module, cp.kernels())
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        with UdpSwitch(device) as switch:
            with UdpHost(1) as client:
                client.connect(switch)
                # destination host 9 was never registered
                msg = Message(src=1, dst=9, comp=9, to=9)
                client.send(msg, spec, [1, 1, None])
                with pytest.raises((socket.timeout, TimeoutError)):
                    client.recv(spec, timeout=0.2)


class TestCompilerErrorQuality:
    def test_syntax_error_carries_location(self):
        try:
            compile_netcl("_kernel(1) void k( { }", 1)
        except CompileError as e:
            assert e.first.line >= 1
        else:
            pytest.fail("expected CompileError")

    def test_semantic_error_mentions_rule(self):
        src = "_net_ _at(2) int m;\n_kernel(1) _at(1) void k(int &r) { r = m; }"
        with pytest.raises(CompileError, match="Eq. 2"):
            compile_netcl(src, 1)

    def test_fit_error_suggests_flags(self):
        from repro.tofino.allocator import FitError

        decls = "\n".join(f"_net_ unsigned m{i};" for i in range(64))
        body = "\n".join(f"  s = ncl::atomic_add_new(&m{i}, s & 255);" for i in range(64))
        src = f"{decls}\n_kernel(1) void k(unsigned &s) {{\n{body}\n}}"
        with pytest.raises(FitError, match="flags"):
            compile_netcl(src, 1)


class TestP4ParserRobustness:
    def test_skips_unknown_toplevel_constructs(self):
        src = """
error { NoError, PacketTooShort }
extern CounterThing { void count(); }
match_kind { exact, ternary }
header h_t { bit<8> f; }
struct headers_t { h_t h; }
"""
        prog = parse_p4(src)
        assert "h_t" in prog.headers

    def test_reports_line_numbers(self):
        try:
            parse_p4("header h_t {\n  bit<8> f\n}")
        except P4ParseError as e:
            assert e.line >= 2
        else:
            pytest.fail("expected P4ParseError")

    def test_tolerates_annotations_and_comments(self):
        src = """
/* block
   comment */
header h_t { bit<8> f; }  // trailing
struct headers_t { h_t h; }
"""
        assert "h_t" in parse_p4(src).headers
