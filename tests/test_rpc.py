"""repro.rpc — in-network accelerated RPC, end to end."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.deploy import PhysicalFabric
from repro.netsim import DEVICE, HOST
from repro.rpc import (
    RPC_WORDS,
    SG_WORDS,
    MemoController,
    RpcMethod,
    RpcSchema,
    build_rpc_cluster,
    compile_rpc_role,
    decode,
    encode,
    finish_topk,
    finish_vote,
    merge_words,
    one_hot,
    pack_topk,
    request_key,
    run_rpc_chaos,
    submit_rpc_tenant,
    tor_device,
    u8,
    u16,
    u32,
    u64,
    vec,
    word_count,
)
from repro.rpc.cluster import EDGE_DEVICE, SG_DEVICE
from repro.rpc.scenarios import (
    BumpReq,
    GetReq,
    QueryReq,
    default_rpc_plan,
    get_value,
    query_partial,
    scenario_handlers,
    scenario_schema,
)
from repro.rpc.tenant import ABSTRACT_SG, abstract_tor
from repro.service import INCService
from repro.service.qos import TenantQoS


# -- IDL --------------------------------------------------------------------------
@dataclass
class Mixed:
    a: u8 = 0
    b: u16 = 0
    c: u32 = 0
    d: u64 = 0
    e: vec(3) = None


class TestIdl:
    def test_scalar_and_vector_roundtrip(self):
        obj = Mixed(a=0xAB, b=0xBEEF, c=0xDEADBEEF, d=(7 << 32) | 9, e=[1, 2, 3])
        words = encode(obj)
        # u8/u16/u32 take one word each, u64 two, vec(3) three.
        assert len(words) == word_count(Mixed) == 8
        assert decode(Mixed, words) == obj

    def test_u64_splits_into_hi_lo_words(self):
        words = encode(Mixed(d=(0x11223344 << 32) | 0x55667788))
        assert words[3] == 0x11223344 and words[4] == 0x55667788

    def test_vector_pads_short_and_rejects_long(self):
        assert encode(Mixed(e=[5]))[5:] == [5, 0, 0]
        with pytest.raises(ValueError, match=r"exceed vec\(3\)"):
            encode(Mixed(e=[1, 2, 3, 4]))

    def test_request_key_is_deterministic_and_method_salted(self):
        words = encode(GetReq(key=3))
        assert request_key(0, words) == request_key(0, list(words))
        assert request_key(0, words) != request_key(1, words)
        assert 0 <= request_key(0, words) < 1 << 64

    def test_schema_rejects_duplicates_and_oversize(self):
        m = RpcMethod("a", 0, GetReq, GetReq)
        with pytest.raises(ValueError, match="duplicate"):
            RpcSchema([m, RpcMethod("b", 0, GetReq, GetReq)])

        @dataclass
        class Huge:
            v: vec(RPC_WORDS + 1) = None

        with pytest.raises(ValueError, match="wire carries"):
            RpcSchema([RpcMethod("big", 1, Huge, GetReq)])


# -- merge policies ---------------------------------------------------------------
class TestPolicies:
    def test_sum_wraps_like_the_kernel(self):
        parts = [[0xFFFFFFFF] * SG_WORDS, [2] * SG_WORDS]
        assert merge_words("sum", parts) == [1] * SG_WORDS

    def test_min_max(self):
        parts = [[5, 9] + [0] * 6, [7, 3] + [0] * 6]
        assert merge_words("min", parts)[:2] == [5, 3]
        assert merge_words("max", parts)[:2] == [7, 9]

    def test_vote_rides_sum(self):
        votes = [one_hot(c, 4) for c in (2, 1, 2, 2)]
        winner, count = finish_vote(merge_words("vote", votes))
        assert (winner, count) == (2, 3)

    def test_topk_is_exact_union_of_lanes(self):
        lanes = [
            pack_topk([(90, 1), (10, 2)], 0, 2, 4),
            pack_topk([(80, 3)], 1, 2, 4),
            pack_topk([(95, 4), (85, 5)], 2, 2, 4),
            pack_topk([(70, 6), (60, 7)], 3, 2, 4),
        ]
        top = finish_topk(merge_words("topk", lanes), 3)
        assert top == [(95, 4), (90, 1), (85, 5)]

    def test_topk_rejects_overfull_lanes(self):
        with pytest.raises(ValueError, match="exceeds"):
            pack_topk([(1, 1)], 0, 3, 4)


# -- memo controller --------------------------------------------------------------
class _RecordingConn:
    def __init__(self):
        self.ops = []

    def __getattr__(self, name):
        if not name.startswith("managed_"):
            raise AttributeError(name)

        def record(*args, **kw):
            self.ops.append((name, args, kw))

        return record


class TestMemoController:
    def test_install_writes_data_before_publishing_index(self):
        conn = _RecordingConn()
        memo = MemoController(conn, lines=4)
        memo.install(77, [1, 2])
        names = [op[0] for op in conn.ops]
        assert names.index("managed_insert") > names.index("managed_write")
        assert memo.cached_keys == 1

    def test_invalidate_bumps_version_and_frees_line(self):
        conn = _RecordingConn()
        memo = MemoController(conn, lines=2)
        line = memo.install(5, [9])
        assert memo.invalidate(5) and not memo.invalidate(5)
        assert memo.cached_keys == 0
        # The freed line is reusable and gets a fresh version.
        assert memo.install(6, [1]) == line

    def test_lru_eviction_removes_victim_mat_entry(self):
        conn = _RecordingConn()
        memo = MemoController(conn, lines=2)
        memo.install(1, [1])
        memo.install(2, [2])
        memo.install(1, [3])  # refresh 1; victim must be 2
        memo.install(4, [4])
        removed = [a for n, a, _ in conn.ops if n == "managed_remove"]
        assert removed == [("MemoIndex", 2)]


# -- compilation ------------------------------------------------------------------
class TestCompile:
    def test_all_three_roles_fit_tofino(self):
        for dev, role in ((EDGE_DEVICE, "edge"), (SG_DEVICE, "sg"), (101, "tor")):
            cp = compile_rpc_role(dev, role, fanout=16)
            assert cp.report is not None and cp.report.stages_used <= 12
        edge = compile_rpc_role(EDGE_DEVICE, "edge", fanout=4)
        assert {k.computation for k in edge.kernels()} == {1, 2}


# -- standalone cluster: unary path ------------------------------------------------
def _small_cluster(**kw):
    bumps: dict[int, int] = {}
    cluster = build_rpc_cluster(
        scenario_schema(),
        scenario_handlers(bumps),
        num_racks=2,
        servers_per_rack=2,
        num_clients=1,
        **kw,
    )
    return cluster, bumps


class TestUnary:
    def test_call_roundtrip_and_memo_hit_on_repeat(self):
        cluster, _ = _small_cluster()
        client = cluster.clients[0]
        first = client.call("get", GetReq(key=9))
        cluster.run(until_ms=5)
        assert first.done and not first.hit
        assert list(first.response.v) == get_value(9)
        again = client.call("get", GetReq(key=9))
        cluster.run(until_ms=5)
        assert again.done and again.hit, "repeat must be served by the ToR"
        assert list(again.response.v) == get_value(9)
        m = cluster.network.metrics
        assert m.total("rpc.client.memo_hits.") == 1
        assert m.total("rpc.server.executions.") == 1

    def test_invalidate_falls_back_to_server_then_rememoizes(self):
        cluster, _ = _small_cluster()
        client = cluster.clients[0]
        client.call("get", GetReq(key=3))
        cluster.run(until_ms=5)
        words = encode(GetReq(key=3))
        rack = cluster.method_rack[0]
        assert cluster.memo[rack].invalidate(request_key(0, words))
        cluster.run(until_ms=1)  # let the managed ops land
        miss = client.call("get", GetReq(key=3))
        cluster.run(until_ms=5)
        assert miss.done and not miss.hit
        hit = client.call("get", GetReq(key=3))
        cluster.run(until_ms=5)
        assert hit.done and hit.hit

    def test_nonidempotent_applied_exactly_once_under_loss(self):
        cluster, bumps = _small_cluster(loss=0.15, seed=11)
        client = cluster.clients[0]
        for token in range(1, 9):
            client.call("bump", BumpReq(token=token))
        cluster.run(until_ms=100)
        assert cluster.all_done, cluster.stall_report()
        assert bumps == {t: 1 for t in range(1, 9)}
        m = cluster.network.metrics
        # Loss forced retries; the duplicates were absorbed by the
        # server's reply cache, never re-executed.
        assert m.total("rpc.client.retries.") > 0

    def test_admission_limits_a_burst_then_recovers(self):
        schema = RpcSchema(
            [
                RpcMethod(
                    "slow", 0, BumpReq, BumpReq, kind="unary",
                    qos=TenantQoS(max_pps=100_000, burst=2),
                ),
            ]
        )
        bumps: dict[int, int] = {}

        def slow(request):
            bumps[request.token] = bumps.get(request.token, 0) + 1
            return request

        cluster = build_rpc_cluster(
            schema, {"slow": slow}, num_racks=1, servers_per_rack=1,
        )
        client = cluster.clients[0]
        for token in range(1, 7):
            client.call("slow", BumpReq(token=token))
        cluster.run(until_ms=120)
        assert cluster.all_done, cluster.stall_report()
        assert bumps == {t: 1 for t in range(1, 7)}
        # Only `burst` fit the bucket: the rest were dropped at the edge
        # and recovered by client retries paced to the refill rate.
        assert cluster.network.metrics.total("rpc.client.retries.") > 0

    def test_deadline_expires_before_retries_finish(self):
        cluster, _ = _small_cluster(loss=1.0)
        failed = []
        call = cluster.clients[0].call(
            "get", GetReq(key=1), on_fail=failed.append, deadline_ns=200_000
        )
        cluster.run(until_ms=2)
        assert call.failed and failed == [call]
        assert cluster.network.metrics.total("rpc.client.deadline_expired.") == 1


# -- standalone cluster: scatter-gather -------------------------------------------
class TestGather:
    def test_all_policies_match_the_host_twin(self):
        cluster, _ = _small_cluster()
        client = cluster.clients[0]
        calls = [
            client.gather(name, QueryReq(q=40 + i))
            for i, name in enumerate(("msum", "mmin", "mmax"))
        ]
        cluster.run(until_ms=10)
        assert cluster.all_done, cluster.stall_report()
        for call in calls:
            expected = merge_words(
                call.method.policy,
                [query_partial(call.request.q, r) for r in range(cluster.fanout)],
            )
            assert call.merged == expected

    def test_gathers_exact_under_loss(self):
        cluster, _ = _small_cluster(loss=0.1, seed=13)
        client = cluster.clients[0]
        calls = [client.gather("msum", QueryReq(q=i)) for i in range(16)]
        cluster.run(until_ms=150)
        assert cluster.all_done, cluster.stall_report()
        for call in calls:
            expected = merge_words(
                "sum",
                [query_partial(call.request.q, r) for r in range(cluster.fanout)],
            )
            assert call.merged == expected

    def test_rescatter_suppresses_already_merged_replicas(self):
        cluster, _ = _small_cluster(loss=0.25, seed=3)
        client = cluster.clients[0]
        for i in range(12):
            client.gather("mmax", QueryReq(q=i))
        cluster.run(until_ms=300)
        assert cluster.all_done, cluster.stall_report()
        m = cluster.network.metrics
        # Heavy loss forces re-scatters; the spine's bitmap piggyback
        # must have silenced at least one already-merged replica.
        assert m.total("rpc.server.suppressed.") > 0

    def test_vote_and_topk_ride_the_switch_merges(self):
        @dataclass
        class Ask:
            q: u32 = 0

        @dataclass
        class Out:
            v: vec(SG_WORDS) = None

        schema = RpcSchema(
            [
                RpcMethod("vote", 0, Ask, Out, kind="gather", policy="vote"),
                RpcMethod("topk", 1, Ask, Out, kind="gather", policy="topk"),
            ]
        )

        def vote(request, replica):
            return one_hot(1 if replica else 3, 4)  # replicas 1..3 vote 1

        def topk(request, replica):
            cands = [(10 * (replica + 1), replica), (5, 8 + replica)]
            return pack_topk(cands, replica, 2, 4)

        cluster = build_rpc_cluster(
            schema, {"vote": vote, "topk": topk},
            num_racks=2, servers_per_rack=2,
        )
        client = cluster.clients[0]
        v = client.gather("vote", Ask(q=1))
        t = client.gather("topk", Ask(q=2))
        cluster.run(until_ms=10)
        assert cluster.all_done, cluster.stall_report()
        assert finish_vote(v.merged[:4]) == (1, 3)
        assert finish_topk(t.merged, 3) == [(40, 3), (30, 2), (20, 1)]


# -- the acceptance scenario ------------------------------------------------------
class TestScenario:
    def test_small_chaos_run_passes(self):
        r = run_rpc_chaos(
            7, servers_per_rack=4, num_clients=2,
            gets_per_client=6, bumps_per_client=3, gathers_per_client=8,
        )
        assert r.ok, r.errors
        assert r.failed_over and r.memo_hits > 0
        assert r.innetwork_link_bytes < r.fanout_link_bytes

    def test_digest_is_deterministic_per_seed(self):
        kw = dict(
            servers_per_rack=2, num_clients=2, gets_per_client=6,
            bumps_per_client=2, gathers_per_client=4, baseline=False,
        )
        a = run_rpc_chaos(7, **kw)
        b = run_rpc_chaos(7, **kw)
        c = run_rpc_chaos(8, **kw)
        assert a.ok and b.ok and c.ok, (a.errors, b.errors, c.errors)
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_crash_free_plan_never_fails_over(self):
        r = run_rpc_chaos(
            5, servers_per_rack=2, num_clients=2,
            gets_per_client=6, bumps_per_client=2, gathers_per_client=4,
            plan=default_rpc_plan(5, crash_at_ns=None), baseline=False,
        )
        assert r.ok, r.errors
        assert not r.failed_over


# -- tenant mode ------------------------------------------------------------------
class TestTenantMode:
    def _service(self) -> INCService:
        fab = PhysicalFabric()
        for sid in (1, 2, 3, 4, 5):
            fab.add_switch(sid, free_stages=12)
        fab.link(DEVICE(1), DEVICE(2))
        for t in (3, 4, 5):
            fab.link(DEVICE(t), DEVICE(1))
            fab.link(DEVICE(t), DEVICE(2))
        for h in (1, 2, 3, 4, 5, 6):
            fab.add_host(h)
        # Every host is dual-homed so one switch crash never partitions
        # it from the fabric (the slice migrates; the host re-routes).
        for h in (1, 2):
            fab.link(HOST(h), DEVICE(1))
            fab.link(HOST(h), DEVICE(2))
        for h, t in ((3, 3), (4, 3), (5, 4), (6, 4)):
            fab.link(HOST(h), DEVICE(t))
            fab.link(HOST(h), DEVICE(5))
        return INCService(fab, seed=5).start()

    def _submit(self, svc, bumps):
        return submit_rpc_tenant(
            svc, "rpc", scenario_schema(), scenario_handlers(bumps),
            client_hosts=[1], server_hosts=[3, 4, 5, 6], num_racks=2,
        )

    def test_rpc_as_tenant(self):
        svc = self._service()
        bumps: dict[int, int] = {}
        rt = self._submit(svc, bumps)
        client = rt.clients[0]
        g = client.call("get", GetReq(key=4))
        b = client.call("bump", BumpReq(token=5))
        q = client.gather("msum", QueryReq(q=11))
        rt.run(until_ms=20)
        assert rt.all_done, rt.stall_report()
        assert list(g.response.v) == get_value(4)
        assert b.response.applied == 1 and bumps == {5: 1}
        assert q.merged == merge_words(
            "sum", [query_partial(11, r) for r in range(4)]
        )
        g2 = client.call("get", GetReq(key=4))
        rt.run(until_ms=20)
        assert g2.done and g2.hit  # memoized at the tenant's ToR slice
        assert svc.network.metrics.value("tenant.rpc.packets") > 0

    def test_memo_and_inflight_calls_survive_tor_migration(self):
        svc = self._service()
        bumps: dict[int, int] = {}
        rt = self._submit(svc, bumps)
        client = rt.clients[0]
        client.call("get", GetReq(key=2))
        rt.run(until_ms=10)
        inflight = [client.gather("msum", QueryReq(q=50 + i)) for i in range(8)]
        client.call("bump", BumpReq(token=77))
        rt.run(until_ms=0.02)  # scatters in flight
        svc.crash_switch(rt.tenant.placement[abstract_tor(0)])
        rt.run(until_ms=300)
        assert rt.all_done, rt.stall_report()
        assert svc.network.metrics.value("service.migrations") == 1
        assert bumps == {77: 1}
        hot = client.call("get", GetReq(key=2))
        rt.run(until_ms=10)
        # The memo cache was journal-replayed onto the replacement slice.
        assert hot.done and hot.hit
        for call in inflight:
            assert call.merged == merge_words(
                "sum", [query_partial(call.request.q, r) for r in range(4)]
            )

    def test_inflight_gathers_survive_spine_migration(self):
        svc = self._service()
        bumps: dict[int, int] = {}
        rt = self._submit(svc, bumps)
        client = rt.clients[0]
        rt.run(until_ms=5)
        calls = [client.gather("mmax", QueryReq(q=900 + i)) for i in range(8)]
        rt.run(until_ms=0.02)
        svc.crash_switch(rt.tenant.placement[ABSTRACT_SG])
        rt.run(until_ms=300)
        assert rt.all_done, rt.stall_report()
        assert svc.network.metrics.value("service.migrations") == 1
        for call in calls:
            assert call.merged == merge_words(
                "max", [query_partial(call.request.q, r) for r in range(4)]
            )
