"""Host/device runtimes: message codec, device dispatch, forwarding
semantics (Table II), managed memory, UDP loopback backend."""

import socket

import pytest

from repro.core import compile_netcl
from repro.runtime import (
    ACT_CODES,
    DeviceConnection,
    ForwardKind,
    KernelSpec,
    Message,
    NetCLDevice,
    NetCLPacket,
    pack,
    unpack,
)
from repro.runtime.control import ManagedMemoryError
from repro.runtime.device import DeviceRuntimeError
from repro.runtime.message import FieldSpec, HEADER_SIZE, NO_DEVICE
from repro.runtime.udp import UdpHost, UdpSwitch
from tests.conftest import FIG4_CACHE

SPEC = KernelSpec(
    1,
    (
        FieldSpec("op", 8),
        FieldSpec("k", 32),
        FieldSpec("v", 32),
        FieldSpec("vals", 32, count=4),
    ),
)


class TestCodec:
    def test_sizes(self):
        assert SPEC.data_bytes == 1 + 4 + 4 + 16
        assert SPEC.size == HEADER_SIZE + SPEC.data_bytes

    def test_pack_unpack_roundtrip(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        raw = pack(msg, SPEC, [7, 0xDEADBEEF, 42, [1, 2, 3, 4]])
        back, values = unpack(raw, SPEC)
        assert (back.src, back.dst, back.to, back.comp) == (1, 2, 3, 1)
        assert values == [7, 0xDEADBEEF, 42, [1, 2, 3, 4]]

    def test_none_skips_packing(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        raw = pack(msg, SPEC, [7, 5, None, None])
        _, values = unpack(raw, SPEC)
        assert values[2] == 0 and values[3] == [0, 0, 0, 0]

    def test_none_skips_unpacking(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        raw = pack(msg, SPEC, [7, 5, 6, [1, 2, 3, 4]])
        _, values = unpack(raw, SPEC, out=[1, None, 1, None])
        assert values[0] == 7 and values[1] is None and values[3] is None

    def test_values_masked_to_width(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        raw = pack(msg, SPEC, [0x1FF, 0, 0, None])
        _, values = unpack(raw, SPEC)
        assert values[0] == 0xFF  # u8 field

    def test_wrong_arity_rejected(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        with pytest.raises(ValueError, match="expects 4 arguments"):
            pack(msg, SPEC, [1, 2, 3])

    def test_wrong_element_count_rejected(self):
        msg = Message(src=1, dst=2, comp=1, to=3)
        with pytest.raises(ValueError, match="expects 4 elements"):
            pack(msg, SPEC, [1, 2, 3, [1, 2]])

    def test_truncated_packet_rejected(self):
        with pytest.raises(ValueError):
            unpack(b"\x00\x01", SPEC)

    def test_netclpacket_wire_roundtrip(self):
        p = NetCLPacket(src=9, dst=8, from_=NO_DEVICE, to=1, comp=2, act=0, data=b"xyz")
        q = NetCLPacket.from_wire(p.to_wire())
        assert (q.src, q.dst, q.from_, q.to, q.comp, q.data) == (9, 8, NO_DEVICE, 1, 2, b"xyz")

    def test_spec_from_kernel(self, fig4_compiled):
        spec = KernelSpec.from_kernel(fig4_compiled.kernels()[0])
        assert [f.name for f in spec.fields] == ["op", "k", "v", "hit", "hot"]
        assert [f.width_bits for f in spec.fields] == [8, 32, 32, 8, 32]


class TestDeviceRuntime:
    @pytest.fixture
    def device(self, fig4_compiled):
        return NetCLDevice(1, fig4_compiled.module, fig4_compiled.kernels())

    def _get(self, key):
        data = bytes([1]) + key.to_bytes(4, "big") + bytes(9)
        return NetCLPacket(src=1, dst=2, from_=NO_DEVICE, to=1, comp=1, act=0, data=data)

    def test_hit_reflects_to_source(self, device):
        d = device.process(self._get(2))
        assert d.kind == ForwardKind.TO_HOST and d.target == 1
        assert d.packet.act == ACT_CODES["reflect"]
        assert d.packet.from_ == 1  # this device became the previous hop

    def test_miss_passes_to_destination(self, device):
        d = device.process(self._get(99))
        assert d.kind == ForwardKind.TO_HOST and d.target == 2
        assert d.packet.act == ACT_CODES["pass"]

    def test_no_op_transit_other_device(self, device):
        p = self._get(2)
        p.to = 7  # computation requested at a different device
        d = device.process(p)
        assert d.kind == ForwardKind.TO_DEVICE and d.target == 7
        assert device.packets_computed == 0  # no implicit computation (§IV)

    def test_unknown_computation_is_noop(self, device):
        p = self._get(2)
        p.comp = 42
        d = device.process(p)
        assert d.kind == ForwardKind.TO_HOST and d.target == 2
        assert device.packets_computed == 0

    def test_duplicate_computation_rejected(self, fig4_compiled):
        kernels = fig4_compiled.kernels()
        with pytest.raises(DeviceRuntimeError, match="Eq. 1"):
            NetCLDevice(1, fig4_compiled.module, list(kernels) + list(kernels))

    def test_repeat_action_recirculates(self):
        src = (
            "_net_ unsigned c;\n"
            "_kernel(1) void k(unsigned &n) {\n"
            "  n = ncl::atomic_inc_new(&c);\n"
            "  if (n < 3) return ncl::repeat();\n"
            "  return ncl::reflect(); }"
        )
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        p = NetCLPacket(src=1, dst=2, from_=NO_DEVICE, to=1, comp=1, act=0, data=bytes(4))
        d = dev.process(p)
        assert d.kind == ForwardKind.TO_HOST
        assert int.from_bytes(d.packet.data, "big") == 3  # ran three times

    def test_repeat_limit_enforced(self):
        src = "_kernel(1) void k(unsigned n) { return ncl::repeat(); }"
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels(), max_repeats=8)
        p = NetCLPacket(src=1, dst=2, from_=NO_DEVICE, to=1, comp=1, act=0, data=bytes(4))
        with pytest.raises(DeviceRuntimeError, match="repeats"):
            dev.process(p)

    def test_reflect_goes_to_previous_device(self):
        src = "_kernel(1) void k(unsigned n) { return ncl::reflect(); }"
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        p = NetCLPacket(src=1, dst=2, from_=6, to=1, comp=1, act=0, data=bytes(4))
        d = dev.process(p)
        assert d.kind == ForwardKind.TO_DEVICE and d.target == 6

    def test_reflect_long_always_goes_to_source(self):
        src = "_kernel(1) void k(unsigned n) { return ncl::reflect_long(); }"
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        p = NetCLPacket(src=1, dst=2, from_=6, to=1, comp=1, act=0, data=bytes(4))
        d = dev.process(p)
        assert d.kind == ForwardKind.TO_HOST and d.target == 1


class TestManagedMemory:
    @pytest.fixture
    def conn(self, fig4_compiled):
        dev = NetCLDevice(1, fig4_compiled.module, fig4_compiled.kernels())
        return DeviceConnection(dev)

    def test_write_and_read_managed(self, conn):
        conn.managed_write("cms", 123, index=5)
        assert conn.managed_read("cms", index=5) == 123

    def test_cannot_write_net_memory(self):
        src = "_net_ unsigned c;\n_kernel(1) void k() { ncl::atomic_inc(&c); }"
        cp = compile_netcl(src, 1)
        conn = DeviceConnection(NetCLDevice(1, cp.module, cp.kernels()))
        with pytest.raises(ManagedMemoryError, match="_net_"):
            conn.managed_write("c", 1)
        conn.managed_read("c")  # reads are fine (checkpointing)

    def test_unknown_name(self, conn):
        with pytest.raises(ManagedMemoryError, match="no global"):
            conn.managed_read("nope")

    def test_placement_enforced(self):
        src = "_at(3) _managed_ unsigned m;\n_kernel(1) _at(3) void k(unsigned &x) { x = m; }"
        cp = compile_netcl(src, 3)
        conn = DeviceConnection(NetCLDevice(1, cp.module, cp.kernels()))
        with pytest.raises(ManagedMemoryError, match="Eq. 2"):
            conn.managed_write("m", 1)

    def test_managed_lookup_lifecycle(self, fig4_compiled):
        # cache in Fig. 4 is static _lookup_; build a managed variant
        src = (
            "_managed_ _lookup_ ncl::kv<unsigned,unsigned> t[8];\n"
            "_kernel(1) void k(unsigned key, unsigned &v, unsigned &hit) {\n"
            "  hit = ncl::lookup(t, key, v); }"
        )
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        conn = DeviceConnection(dev)
        conn.managed_insert("t", 5, value=50)
        assert conn.managed_modify("t", 5, 51)
        entries = conn.entries("t")
        assert len(entries) == 1 and entries[0].value == 51
        assert conn.managed_remove("t", 5)
        assert not conn.entries("t")


class TestUdpBackend:
    def test_end_to_end_over_loopback(self):
        cp = compile_netcl(FIG4_CACHE, 1, program_name="fig4")
        device = NetCLDevice(1, cp.module, cp.kernels())
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        with UdpSwitch(device) as switch:
            with UdpHost(1) as client, UdpHost(2) as server:
                client.connect(switch)
                server.connect(switch)
                # cached key 2: reflected straight back to the client
                msg = Message(src=1, dst=2, comp=1, to=1)
                client.send(msg, spec, [1, 2, None, None, None])
                back, values = client.recv(spec)
                assert values[2] == 42 and values[3] == 1
                # miss: lands at the server
                client.send(msg, spec, [1, 99, None, None, None])
                back2, values2 = server.recv(spec)
                assert values2[1] == 99 and values2[3] == 0

    def test_multicast_over_loopback(self):
        src = "_kernel(1) void k(unsigned n) { return ncl::multicast(9); }"
        cp = compile_netcl(src, 1)
        device = NetCLDevice(1, cp.module, cp.kernels())
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        with UdpSwitch(device) as switch:
            hosts = [UdpHost(i) for i in (1, 2, 3)]
            try:
                for h in hosts:
                    h.connect(switch)
                switch.add_multicast_group(9, [1, 2, 3])
                hosts[0].send(Message(src=1, dst=2, comp=1, to=1), spec, [7])
                for h in hosts:
                    _, values = h.recv(spec)
                    assert values == [7]
            finally:
                for h in hosts:
                    h.close()

    def test_recv_timeout(self):
        with UdpHost(1) as h:
            with pytest.raises((socket.timeout, TimeoutError)):
                h.recv(SPEC, timeout=0.05)
