"""Semantic analysis: placement validity (Eq. 1), reference validity
(Eq. 2), specification matching, and device/host separation."""

import pytest

from repro.lang import analyze, parse_source
from repro.lang.errors import CompileError


def check(src):
    return analyze(parse_source(src))


class TestPlacementValidity:
    def test_single_locationless_kernel_ok(self):
        check("_kernel(1) void a() { }")

    def test_two_locationless_kernels_same_computation_invalid(self):
        # Paper §V-C: kernel b invalid because of a.
        with pytest.raises(CompileError, match="Eq. 1"):
            check("_kernel(1) _at(1,2) void a() { }\n_kernel(1) void b() { }")

    def test_disjoint_locations_valid(self):
        check("_kernel(1) _at(1) void a() { }\n_kernel(1) _at(2) void b() { }")

    def test_overlapping_locations_invalid(self):
        with pytest.raises(CompileError, match="overlap"):
            check("_kernel(1) _at(1,2) void a() { }\n_kernel(1) _at(2,3) void b() { }")

    def test_different_computations_may_overlap(self):
        check("_kernel(1) _at(1) void a() { }\n_kernel(2) _at(1) void b() { }")


class TestReferenceValidity:
    def test_paper_example_valid_reference(self):
        check(
            "_net_ _at(1,2) int m[42];\n"
            "_kernel(1) _at(1,2) void a() { m[0] = 1; }"
        )

    def test_paper_example_invalid_reference(self):
        # Kernel c is location-less but m only exists at 1,2 (§V-C).
        with pytest.raises(CompileError, match="Eq. 2"):
            check("_net_ _at(1,2) int m[42];\n_kernel(2) void c() { m[0] = 42; }")

    def test_subset_location_valid(self):
        check("_net_ _at(1,2,3) int m[4];\n_kernel(1) _at(2) void k() { m[0] = 1; }")

    def test_superset_location_invalid(self):
        with pytest.raises(CompileError, match="Eq. 2"):
            check("_net_ _at(1) int m[4];\n_kernel(1) _at(1,2) void k() { m[0] = 1; }")

    def test_locationless_memory_always_valid(self):
        check("_net_ int m[4];\n_kernel(1) _at(7) void k() { m[0] = 1; }")

    def test_net_function_reference_validity(self):
        with pytest.raises(CompileError, match="Eq. 2"):
            check(
                "_net_ _at(3) void helper(int x) { }\n"
                "_kernel(1) _at(1) void k(int x) { helper(x); }"
            )


class TestSpecifications:
    def test_matching_specs_ok(self):
        check(
            "_kernel(1) _at(1) void a(int x[4]) { }\n"
            "_kernel(1) _at(2) void b(int _spec(4) *x) { }"
        )

    def test_mismatched_specs_rejected(self):
        # Paper §V-A: kernels a and d could not share a computation.
        with pytest.raises(CompileError, match="mismatched"):
            check(
                "_kernel(1) _at(1) void a(int x[3]) { }\n"
                "_kernel(1) _at(2) void d(int x, int y[2], int *z) { }"
            )

    def test_spec_on_non_pointer_rejected(self):
        with pytest.raises(CompileError, match="_spec"):
            check("_kernel(1) void k(int _spec(4) x) { }")

    def test_spec_on_netfn_ignored(self):
        res = check("_net_ void f(int _spec(4) *x) { }")
        assert res.functions["f"].decl.params[0].spec is None


class TestDeviceRules:
    def test_kernel_must_return_void(self):
        with pytest.raises(CompileError, match="void"):
            check("_kernel(1) int k() { return 1; }")

    def test_kernel_cannot_be_called(self):
        with pytest.raises(CompileError, match="not invoked directly"):
            check(
                "_kernel(1) _at(1) void a() { }\n"
                "_kernel(2) _at(1) void b() { a(); }"
            )

    def test_host_library_rejected_in_device_code(self):
        with pytest.raises(CompileError, match="host library"):
            check("_kernel(1) void k() { ncl::managed_write(0, 0, 0); }")

    def test_recursion_rejected(self):
        with pytest.raises(CompileError, match="recursion"):
            check(
                "_net_ void f(int x) { g(x); }\n"
                "_net_ void g(int x) { f(x); }\n"
                "_kernel(1) void k(int x) { f(x); }"
            )

    def test_call_to_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("_kernel(1) void k() { mystery(); }")

    def test_host_function_call_rejected(self):
        with pytest.raises(CompileError, match="host function"):
            check("int helper() { return 1; }\n_kernel(1) void k() { helper(); }")

    def test_kv_requires_lookup(self):
        with pytest.raises(CompileError, match="_lookup_"):
            check("_net_ ncl::kv<int,int> t[4];")

    def test_register_memory_initializer_rejected(self):
        with pytest.raises(CompileError, match="zero-initialized"):
            check("_net_ int m[4] = {1,2,3,4};")

    def test_lookup_entries_over_capacity(self):
        with pytest.raises(CompileError, match="capacity"):
            check("_net_ _lookup_ ncl::kv<int,int> t[1] = {{1,2},{3,4}};")

    def test_rv_lo_greater_than_hi(self):
        with pytest.raises(CompileError, match="lo > hi"):
            check("_net_ _lookup_ ncl::rv<int,int> t[2] = {{{10,1},5}};")

    def test_unknown_builtin(self):
        with pytest.raises(CompileError, match="unknown builtin"):
            check("_kernel(1) void k() { ncl::frobnicate(); }")

    def test_multiple_errors_accumulated(self):
        try:
            check(
                "_kernel(1) int a() { return 1; }\n"
                "_net_ ncl::kv<int,int> t[4];"
            )
        except CompileError as e:
            assert len(e.diagnostics) >= 2
        else:
            pytest.fail("expected CompileError")
