"""The multi-tenant INC service: admission, placement, migration, QoS."""

from __future__ import annotations

import json

import pytest

from repro.apps import compile_app
from repro.core import compile_netcl
from repro.deploy import AbstractTopology, PhysicalFabric
from repro.netsim import DEVICE, HOST
from repro.runtime import KernelSpec, Message
from repro.runtime.message import unpack
from repro.service import (
    AdmissionError,
    INCService,
    TENANT_BASE,
    TenantQoS,
    TenantState,
    default_service_plan,
    run_service_plan,
)
from repro.service.cli import main as service_main

ECHO = "_kernel(1) void k(uint32_t x, uint32_t &y) { y = x + %d; return ncl::reflect(); }"
MANAGED = """
_managed_ unsigned table[8];
_kernel(1) void k(uint32_t x, uint32_t &y) { y = x; return ncl::reflect(); }
"""


def _fabric(num_switches=2, host_links=None, free_stages=12):
    """A line of switches; host_links maps host id -> switch ids."""
    host_links = host_links or {1: [1]}
    fab = PhysicalFabric()
    for sid in range(1, num_switches + 1):
        fab.add_switch(sid, free_stages=free_stages)
        if sid > 1:
            fab.link(DEVICE(sid - 1), DEVICE(sid))
    for h, sids in host_links.items():
        fab.add_host(h)
        for sid in sids:
            fab.link(HOST(h), DEVICE(sid))
    return fab


def _topo(src, host=1, name="t"):
    cp = compile_netcl(src, 1, program_name=name)
    topo = AbstractTopology()
    topo.add_device(1, cp)
    topo.attach_host(host, 1)
    return topo, cp


def _echo_round_trip(svc, tenant_id, cp, host_id, value):
    """Send one request to the tenant's device 1 and return the reply."""
    net = svc.network
    spec = KernelSpec.from_kernel(cp.kernels()[0])
    host = net.hosts[host_id]
    got = []
    host.on_receive = lambda p, now: got.append(unpack(p.to_wire(), spec)[1])
    gid = svc.device_id_of(tenant_id, 1)
    host.send_message(
        Message(src=host_id, dst=host_id, comp=1, to=gid), spec, [value, None]
    )
    net.sim.run(until_ns=net.sim.now_ns + 2_000_000)
    return got


class TestAdmission:
    def test_oversized_tenant_rejected_with_breakdown(self):
        svc = INCService(_fabric(free_stages=6))
        cp = compile_app("agg", 1)  # needs all 12 stages
        topo = AbstractTopology()
        topo.add_device(1, cp)
        topo.attach_host(1, 1)
        with pytest.raises(AdmissionError, match="no feasible placement") as ei:
            svc.submit("big", topo)
        bd = ei.value.breakdown
        assert bd is not None and bd.device == 1
        reasons = {sw.switch_id: sw.reason for sw in bd.switches}
        assert set(reasons) == {1, 2}
        assert all("stages" in r for r in reasons.values())
        assert svc.tenants["big"].state is TenantState.REJECTED
        assert svc.network.metrics.value("service.admission_rejects") == 1

    def test_resubmit_of_running_tenant_rejected(self):
        svc = INCService(_fabric())
        topo, _ = _topo(ECHO % 1)
        svc.submit("t1", topo)
        with pytest.raises(AdmissionError, match="already running"):
            svc.submit("t1", topo)

    def test_unknown_host_rejected(self):
        svc = INCService(_fabric())
        topo, _ = _topo(ECHO % 1, host=99)
        with pytest.raises(AdmissionError, match="host 99"):
            svc.submit("t1", topo)
        assert svc.tenants["t1"].state is TenantState.REJECTED

    def test_host_exclusivity(self):
        svc = INCService(_fabric())
        topo_a, _ = _topo(ECHO % 1, name="a")
        topo_b, _ = _topo(ECHO % 2, name="b")
        svc.submit("a", topo_a)
        with pytest.raises(AdmissionError, match="host 1"):
            svc.submit("b", topo_b)

    def test_queue_on_reject_drains_after_eviction(self):
        svc = INCService(
            _fabric(num_switches=1, free_stages=3, host_links={1: [1], 2: [1]})
        )
        topo_a, _ = _topo(ECHO % 1, name="a")
        topo_b, _ = _topo(ECHO % 2, host=2, name="b")
        svc.submit("a", topo_a)
        b = svc.submit("b", topo_b, TenantQoS(queue_on_reject=True))
        assert b.state is TenantState.QUEUED
        svc.evict("a")
        assert b.state is TenantState.RUNNING
        assert b.placement == {1: 1}


class TestIncrementalPlacement:
    def test_tenants_share_residual_headroom(self):
        svc = INCService(_fabric(num_switches=2, free_stages=3))
        topo_a, _ = _topo(ECHO % 1, name="a")
        cp_b = compile_netcl(ECHO % 2, 1, program_name="b")
        topo_b = AbstractTopology()
        topo_b.add_device(1, cp_b)
        a = svc.submit("a", topo_a)
        b = svc.submit("b", topo_b)  # location-free: lands on the leftover
        assert a.placement == {1: 1}
        assert b.placement == {1: 2}
        util = svc.utilization()
        assert util[1]["used"]["stages"] == 3 and util[2]["used"]["stages"] == 3

    def test_intra_tenant_anti_affinity(self):
        svc = INCService(_fabric(num_switches=2))
        topo = AbstractTopology()
        for dev in (1, 2):
            topo.add_device(
                dev, compile_netcl(ECHO.replace("(1)", f"({dev})") % dev, dev,
                                   program_name=f"d{dev}")
            )
        topo.attach_host(1, 1)
        topo.connect_devices(1, 2)
        t = svc.submit("t", topo)
        assert set(t.placement.values()) == {1, 2}

    def test_placement_is_deterministic(self):
        def place_all():
            svc = INCService(
                _fabric(num_switches=3, host_links={1: [1], 2: [3], 3: [2]})
            )
            out = {}
            for i, name in enumerate(("x", "y", "z")):
                cp = compile_netcl(ECHO % i, 1, program_name=name)
                topo = AbstractTopology()
                topo.add_device(1, cp)
                topo.attach_host(i + 1, 1)
                out[name] = dict(svc.submit(name, topo).placement)
                svc.evict(name) if name == "y" else None
            return out

        assert place_all() == place_all()


class TestTenantTraffic:
    def test_echo_round_trip_through_tenant_slice(self):
        svc = INCService(_fabric())
        topo, cp = _topo(ECHO % 5)
        t = svc.submit("t1", topo)
        assert t.abstract_to_gid[1] == TENANT_BASE
        got = _echo_round_trip(svc, "t1", cp, 1, 40)
        assert got == [[40, 45]]
        m = svc.network.metrics
        assert m.value("tenant.t1.packets") == 1
        assert m.value("tenant.t1.computed") == 1

    def test_ingress_rate_limit_drops_and_counts(self):
        svc = INCService(_fabric())
        topo, cp = _topo(ECHO % 0)
        svc.submit("t1", topo, TenantQoS(max_pps=1000.0, burst=2))
        net = svc.network
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        host = net.hosts[1]
        got = []
        host.on_receive = lambda p, now: got.append(p)
        gid = svc.device_id_of("t1", 1)
        for i in range(10):  # all within ~1 us: bucket refills ~nothing
            host.send_message(
                Message(src=1, dst=1, comp=1, to=gid), spec, [i, None]
            )
        net.sim.run(until_ns=5_000_000)
        m = net.metrics
        assert m.value("tenant.t1.rate_limited") == 8
        assert len(got) == 2

    def test_evict_tears_down_and_frees_hosts(self):
        svc = INCService(_fabric())
        topo, cp = _topo(ECHO % 1, name="a")
        svc.submit("a", topo)
        gid = svc.device_id_of("a", 1)
        svc.evict("a")
        assert svc.utilization()[1]["used"]["stages"] == 0
        assert DEVICE(gid) not in svc.network.switches
        # the host is free again: a new tenant can claim it
        topo_b, cp_b = _topo(ECHO % 7, name="b")
        svc.submit("b", topo_b)
        assert _echo_round_trip(svc, "b", cp_b, 1, 10) == [[10, 17]]


class TestLiveMigration:
    def test_crash_migrates_and_replays_journal(self):
        svc = INCService(
            _fabric(num_switches=2, host_links={1: [1, 2]}), heartbeat_ns=50_000
        ).start()
        topo, cp = _topo(MANAGED)
        t = svc.submit("t1", topo)
        assert t.placement == {1: 1}
        conn = svc.control("t1", 1)
        conn.managed_write("table", 99, 0)
        svc.crash_switch(1)
        svc.network.sim.run(until_ns=svc.network.sim.now_ns + 500_000)
        assert t.placement == {1: 2}
        assert t.migrations == 1
        m = svc.network.metrics
        assert m.value("service.migrations") == 1
        assert m.value("tenant.t1.migrations") == 1
        assert m.value("service.ops_replayed") >= 1
        # the journal was replayed onto the replacement slice
        assert conn.managed_read("table", 0) == 99
        # and the slice still serves traffic from its new switch
        assert _echo_round_trip(svc, "t1", cp, 1, 12) == [[12, 12]]
        svc.stop()

    def test_migration_fails_when_no_residual(self):
        svc = INCService(_fabric(num_switches=1), heartbeat_ns=50_000).start()
        topo, _ = _topo(ECHO % 1)
        t = svc.submit("t1", topo)
        svc.crash_switch(1)
        svc.network.sim.run(until_ns=svc.network.sim.now_ns + 500_000)
        assert svc.network.metrics.value("service.migration_failures") >= 1
        assert t.placement == {1: 1}  # stranded, not silently re-placed
        assert svc.report()["down_switches"] == [1]
        svc.stop()

    def test_defragment_repacks_after_eviction(self):
        svc = INCService(_fabric(num_switches=2, host_links={1: [1, 2]},
                                 free_stages=3))
        topo_a, _ = _topo(ECHO % 1, name="a")
        topo_b, cp_b = _topo(ECHO % 2, name="b")
        svc.submit("a", topo_a)
        with pytest.raises(AdmissionError):  # host 1 is taken
            svc.submit("b", topo_b)
        svc.tenants.pop("b")
        fab = svc.fabric
        fab.add_host(2)
        fab.link(HOST(2), DEVICE(1))
        fab.link(HOST(2), DEVICE(2))
        svc.network.add_host(2)
        svc.network.link(HOST(2), DEVICE(10_001))
        svc.network.link(HOST(2), DEVICE(10_002))
        topo_b2, cp_b = _topo(ECHO % 2, host=2, name="b")
        b = svc.submit("b", topo_b2)
        assert b.placement == {1: 2}  # switch 1 is full
        svc.evict("a")
        assert svc.defragment() == 1
        assert b.placement == {1: 1}
        assert svc.network.metrics.value("service.defrag_moves") == 1
        assert _echo_round_trip(svc, "b", cp_b, 2, 3) == [[3, 5]]

    def test_headroom_shrink_migrates_victims(self):
        svc = INCService(_fabric(num_switches=2, host_links={1: [1, 2]},
                                 free_stages=3))
        topo, _ = _topo(ECHO % 1)
        t = svc.submit("t1", topo)
        assert t.placement == {1: 1}
        svc.update_headroom(1, free_stages=0)
        assert t.placement == {1: 2}
        assert svc.fabric.switches[1].free_stages == 0

    def test_update_headroom_rejects_unknown_key(self):
        svc = INCService(_fabric())
        with pytest.raises(TypeError, match="free_stagez"):
            svc.update_headroom(1, free_stagez=4)
        with pytest.raises(KeyError):
            svc.update_headroom(99, free_stages=4)


class TestWorkloadReplay:
    def test_default_plan_end_to_end(self):
        result = run_service_plan(default_service_plan(5))
        assert result.ok, result.errors
        # two tenants finished on the shared fabric; the oversized third
        # was rejected with a resource-attributed breakdown
        assert result.tenants["agg"]["completed"] == 32
        assert result.tenants["cache"]["completed"] == 32
        (reject,) = result.rejected
        assert reject["tenant"] == "bulk"
        assert any("stages" in sw["reason"] for sw in reject["breakdown"]["switches"])
        # the mid-run crash live-migrated the cache tenant
        assert result.report["service"]["migrations"] >= 1
        assert result.report["down_switches"] == [3]
        assert result.report["tenants"]["cache"]["slo"]["met"] is True

    def test_per_tenant_telemetry_is_isolated(self):
        result = run_service_plan(default_service_plan(5))
        m = result.metrics
        for tid in ("agg", "cache"):
            assert m[f"tenant.{tid}.packets"] > 0
            assert m[f"tenant.{tid}.computed"] > 0
        assert "tenant.bulk.packets" in m  # registered but never trafficked
        assert m["tenant.bulk.packets"] == 0

    def test_replay_is_deterministic(self):
        a = run_service_plan(default_service_plan(5))
        b = run_service_plan(default_service_plan(5))
        assert a.digest == b.digest
        assert run_service_plan(default_service_plan(6)).digest != a.digest

    def test_plan_json_round_trip(self):
        from repro.service import ServicePlan

        plan = default_service_plan(9)
        again = ServicePlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()

    def test_cli_runs_and_dumps(self, capsys, tmp_path):
        assert service_main(["--dump-plan"]) == 0
        dumped = capsys.readouterr().out
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(dumped)
        assert service_main(["--plan", str(plan_file)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "fabric utilization" in out
        assert "bulk breakdown" in out

    def test_cli_json_output(self, capsys):
        assert service_main(["--no-crash", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["report"]["service"]["migrations"] == 0
