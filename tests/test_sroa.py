"""SROA: scalarization of constant-indexed local arrays."""


from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.ir.instructions import Alloca
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import mem2reg, scalarize_local_arrays, simplify_function


def _lower(src):
    return lower_to_ir(analyze(parse_source(src)))


def _arrays(fn):
    return [a for a in fn.instructions() if isinstance(a, Alloca) and not a.is_scalar]


class TestSroa:
    def test_constant_indexed_array_scalarized(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {\n"
            "  unsigned c[3];\n"
            "  for (auto i = 0; i < 3; ++i) c[i] = x + i;\n"
            "  r = c[0] + c[2]; }"
        )
        fn = _lower(src).kernels()[0]
        assert scalarize_local_arrays(fn) == 1
        assert not _arrays(fn)
        # after mem2reg nothing is left in memory at all
        mem2reg(fn)
        assert not any(isinstance(i, Alloca) for i in fn.instructions())

    def test_dynamic_index_blocks_scalarization(self):
        src = (
            "_kernel(1) void k(unsigned i, unsigned &r) {\n"
            "  unsigned c[4];\n"
            "  c[i & 3] = 7;\n"
            "  r = c[0]; }"
        )
        fn = _lower(src).kernels()[0]
        assert scalarize_local_arrays(fn) == 0
        assert len(_arrays(fn)) == 1

    def test_behavior_preserved(self):
        src = (
            "_kernel(1) void k(unsigned x, unsigned &r) {\n"
            "  unsigned c[4] = {1, 2, 3, 4};\n"
            "  c[2] = c[2] * x;\n"
            "  r = c[0] + c[1] + c[2] + c[3]; }"
        )
        for x in (0, 1, 10):
            mod = _lower(src)
            fn = mod.kernels()[0]
            scalarize_local_arrays(fn)
            mem2reg(fn)
            simplify_function(fn)
            msg = KernelMessage({"x": x, "r": 0})
            IRInterpreter(mod, GlobalState()).run_kernel(fn, msg)
            assert msg.fields["r"] == 1 + 2 + 3 * x + 4

    def test_fig4_min_chain_becomes_selects(self, fig4_module):
        """With SROA, Fig. 4's c[CMS_HASHES] min chain if-converts into
        selects (no gateway diamonds remain on the sketch path)."""
        from repro.passes import PassOptions, run_default_pipeline
        from repro.ir.instructions import Select

        run_default_pipeline(fig4_module, PassOptions())
        fn = fig4_module.functions["query"]
        assert any(isinstance(i, Select) for i in fn.instructions())

    def test_huge_arrays_left_alone(self):
        src = (
            "_kernel(1) void k(unsigned &r) {\n"
            "  unsigned big[300];\n"
            "  big[0] = 1;\n"
            "  r = big[0]; }"
        )
        fn = _lower(src).kernels()[0]
        assert scalarize_local_arrays(fn) == 0
