"""The §IV system model, reproduced as Fig. 5(a) end to end.

Four hosts, three devices, two computations: "square" triggers a local
computation at dev1 that multicasts to hosts h1 and h2; "circle" computes
at dev2, forwards to dev3, computes again, and continues to its original
destination h4.  Along the way the no-implicit-computation rule and the
previous-hop semantics of reflect() are exercised.
"""

import pytest

from repro.core import compile_netcl
from repro.netsim import DEVICE, HOST, Network
from repro.runtime import KernelSpec, Message, NetCLDevice
from repro.runtime.message import unpack

# Computation 1 = "square" at device 1; computation 2 = "circle" at
# devices 2 and 3 with different per-device behavior (SPMD on device.id).
SRC = r"""
#define SQUARE_GROUP 7

_at(1) _kernel(1) void square(unsigned x, unsigned &y) {
  y = x * x;
  return ncl::multicast(SQUARE_GROUP);
}

_at(2, 3) _net_ unsigned hops;

_at(2, 3) _kernel(2) void circle(unsigned &trace) {
  ncl::atomic_inc(&hops);
  trace = trace * 10 + device.id;
  if (device.id == 2)
    return ncl::send_to_device(3);   // alter the path (Fig. 5a)
  return ncl::pass();                // dev3: continue to the destination
}
"""


@pytest.fixture
def system():
    net = Network()
    hosts = {i: net.add_host(i) for i in (1, 2, 3, 4)}
    devices = {}
    for dev_id in (1, 2, 3):
        cp = compile_netcl(SRC, dev_id, program_name="fig5")
        dev = NetCLDevice(dev_id, cp.module, cp.kernels())
        devices[dev_id] = dev
        net.add_switch(dev)
    # Topology: h1,h2 on dev1; dev1-dev2-dev3 chain; h3 on dev2, h4 on dev3.
    net.link(HOST(1), DEVICE(1))
    net.link(HOST(2), DEVICE(1))
    net.link(DEVICE(1), DEVICE(2))
    net.link(DEVICE(2), DEVICE(3))
    net.link(HOST(3), DEVICE(2))
    net.link(HOST(4), DEVICE(3))
    net.add_multicast_group(7, [HOST(1), HOST(2)])
    cp1 = compile_netcl(SRC, 1, program_name="fig5")
    cp2 = compile_netcl(SRC, 2, program_name="fig5")
    square_spec = KernelSpec.from_kernel(cp1.codegen.kernel_for_computation(1))
    circle_spec = KernelSpec.from_kernel(cp2.codegen.kernel_for_computation(2))
    return net, hosts, devices, square_spec, circle_spec


def test_square_multicasts_to_neighbor_hosts(system):
    net, hosts, devices, square_spec, _ = system
    # send(1->2, square, dev1, m)
    hosts[1].send_message(Message(src=1, dst=2, comp=1, to=1), square_spec, [6, None])
    net.sim.run()
    for hid in (1, 2):
        assert len(hosts[hid].received) == 1, hid
        _, values = unpack(hosts[hid].received[0][1].to_wire(), square_spec)
        assert values == [6, 36]
    assert not hosts[3].received and not hosts[4].received


def test_circle_chains_two_devices_then_reaches_destination(system):
    net, hosts, devices, _, circle_spec = system
    # send(1->4, circle, dev2, m): dev1 is a transit no-op.
    hosts[1].send_message(Message(src=1, dst=4, comp=2, to=2), circle_spec, [0])
    net.sim.run()
    assert len(hosts[4].received) == 1
    _, values = unpack(hosts[4].received[0][1].to_wire(), circle_spec)
    assert values == [23]  # computed at dev2 then dev3, in order
    # no-implicit-computation: dev1 saw the packet but never computed
    assert devices[1].packets_seen >= 1 and devices[1].packets_computed == 0
    assert devices[2].packets_computed == 1 and devices[3].packets_computed == 1


def test_multi_location_memory_is_per_device(system):
    net, hosts, devices, _, circle_spec = system
    for _ in range(3):
        hosts[1].send_message(Message(src=1, dst=4, comp=2, to=2), circle_spec, [0])
    net.sim.run()
    # `hops` is _at(2,3): one copy per device, each incremented locally.
    assert devices[2].state.cp_register_read("hops") == 3
    assert devices[3].state.cp_register_read("hops") == 3
    with pytest.raises(Exception):
        devices[1].state.cp_register_read("hops")  # not placed at dev1


def test_previous_hop_semantics_of_reflect(system):
    """From dev3's perspective the previous hop is the last *computing*
    device (dev2), not the transit switch (§IV)."""
    net, hosts, devices, _, circle_spec = system
    hosts[1].send_message(Message(src=1, dst=4, comp=2, to=2), circle_spec, [0])
    net.sim.run()
    pkt = hosts[4].received[0][1]
    assert pkt.from_ == 3  # dev3 computed last before delivery


def test_compact_topology_shares_devices():
    """Fig. 5(c) rightmost: both computations co-located on one device."""
    src = (
        "_kernel(1) void square(unsigned x, unsigned &y) { y = x * x; return ncl::reflect(); }\n"
        "_kernel(2) void negate(unsigned x, unsigned &y) { y = 0 - x; return ncl::reflect(); }\n"
    )
    cp = compile_netcl(src, 1, program_name="compact")
    dev = NetCLDevice(1, cp.module, cp.kernels())
    assert set(dev.kernels) == {1, 2}
    net = Network()
    h = net.add_host(1)
    net.add_switch(dev)
    net.link(HOST(1), DEVICE(1))
    s1 = KernelSpec.from_kernel(cp.codegen.kernel_for_computation(1))
    s2 = KernelSpec.from_kernel(cp.codegen.kernel_for_computation(2))
    h.send_message(Message(src=1, dst=1, comp=1, to=1), s1, [9, None])
    h.send_message(Message(src=1, dst=1, comp=2, to=1), s2, [9, None])
    net.sim.run()
    results = sorted(unpack(p.to_wire(), s1)[1][1] for _, p in h.received)
    assert results == sorted([81, (0 - 9) & 0xFFFFFFFF])
