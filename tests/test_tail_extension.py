"""The §VIII *message tail* extension.

The paper notes the fixed specifications force clients to transfer
placeholder bytes (e.g. zeros where the switch will write a cache value)
and proposes a message-tail abstraction as future work.  We implement it:
the last kernel argument may be declared ``_tail_``, making it optional
on the wire — a sender omits it (smaller request) and the device appends
it to the message.
"""

import pytest

from repro.core import compile_netcl
from repro.lang import analyze, parse_source
from repro.lang.errors import CompileError
from repro.netsim import DEVICE, HOST, Network
from repro.runtime import KernelSpec, Message, NetCLDevice, pack, unpack
from repro.runtime.message import HEADER_SIZE

TAIL_KERNEL = r"""
// NetCache-style GET where clients send only the key; the value words
// travel only on the response (appended by the switch).
_managed_ _lookup_ ncl::kv<unsigned, unsigned> idx[8];
_managed_ unsigned data[4][8];

_kernel(1) _at(1) void get(unsigned key, char &hit,
                           _tail_ unsigned _spec(4) *val) {
  unsigned line = 0;
  if (ncl::lookup(idx, key, line)) {
    for (auto i = 0; i < 4; ++i)
      val[i] = data[i][line & 7];
    hit = 1;
    return ncl::reflect();
  }
}
"""


@pytest.fixture
def compiled():
    return compile_netcl(TAIL_KERNEL, 1, program_name="tailget")


class TestTailLanguageRules:
    def test_tail_only_on_last_argument(self):
        with pytest.raises(CompileError, match="last kernel argument"):
            analyze(parse_source(
                "_kernel(1) void k(_tail_ unsigned *v, unsigned x) { }"
            ))

    def test_tail_must_be_reference_or_array(self):
        with pytest.raises(CompileError, match="by-reference or arrays"):
            analyze(parse_source("_kernel(1) void k(_tail_ unsigned x) { }"))

    def test_matching_tail_specs_accepted(self):
        analyze(parse_source(
            "_kernel(1) _at(1) void a(unsigned k, _tail_ unsigned _spec(4) *v) { }\n"
            "_kernel(1) _at(2) void b(unsigned k, _tail_ unsigned _spec(4) *v) { }"
        ))

    def test_tail_spec_mismatch_rejected(self):
        # a's tail vs b's non-tail: different message layouts -> Eq. spec rule
        with pytest.raises(CompileError, match="mismatched"):
            analyze(parse_source(
                "_kernel(1) _at(1) void a(unsigned k, _tail_ unsigned &v) { }\n"
                "_kernel(1) _at(2) void b(unsigned k, unsigned v) { }"
            ))


class TestTailWire:
    def test_omitted_tail_shrinks_packet(self, compiled):
        spec = KernelSpec.from_kernel(compiled.kernels()[0])
        msg = Message(src=1, dst=2, comp=1, to=1)
        short = pack(msg, spec, [5, None, None])
        full = pack(msg, spec, [5, None, [1, 2, 3, 4]])
        assert len(full) - len(short) == 16  # 4 x u32 saved on requests
        assert len(short) == HEADER_SIZE + 4 + 1

    def test_short_packet_unpacks_with_zero_tail(self, compiled):
        spec = KernelSpec.from_kernel(compiled.kernels()[0])
        msg = Message(src=1, dst=2, comp=1, to=1)
        raw = pack(msg, spec, [5, None, None])
        _, values = unpack(raw, spec)
        assert values == [5, 0, [0, 0, 0, 0]]

    def test_device_appends_tail(self, compiled):
        from repro.runtime.message import NetCLPacket

        device = NetCLDevice(1, compiled.module, compiled.kernels())
        device.state.cp_table_insert("idx", 5, value=3)
        for i in range(4):
            device.state.cp_register_write("data", 40 + i, index=i * 8 + 3)
        spec = KernelSpec.from_kernel(compiled.kernels()[0])
        # request carries only key+hit: 5 data bytes
        raw = pack(Message(src=1, dst=2, comp=1, to=1), spec, [5, None, None])
        packet = NetCLPacket.from_wire(raw)
        assert len(packet.data) == 5
        decision = device.process(packet)
        # the response carries the appended tail
        assert len(decision.packet.data) == 5 + 16
        _, values = unpack(decision.packet.to_wire(), spec)
        assert values == [5, 1, [40, 41, 42, 43]]

    def test_end_to_end_over_netsim(self, compiled):
        device = NetCLDevice(1, compiled.module, compiled.kernels())
        device.state.cp_table_insert("idx", 9, value=1)
        for i in range(4):
            device.state.cp_register_write("data", 90 + i, index=i * 8 + 1)
        spec = KernelSpec.from_kernel(compiled.kernels()[0])
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(device)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        request = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [9, None, None])
        net.sim.run()
        assert len(h1.received) == 1
        _, response = h1.received[0]
        _, values = unpack(response.to_wire(), spec)
        assert values == [9, 1, [90, 91, 92, 93]]
        # the request was 16 bytes lighter than the response
        assert response.size_bytes - request.size_bytes == 16
