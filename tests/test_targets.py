"""Target-specific behavior: TNA vs v1model (§V-D, §VI-B).

The paper's approach: stay unrestricted at the language level and reject
programs per target.  The v1model software switch executes any valid P4,
so programs that violate Tofino's stateful-memory rules still compile for
v1model — and everything that compiles behaves identically on both.
"""

import pytest

from repro.core import compile_netcl
from repro.ir import GlobalState, IRInterpreter, KernelMessage
from repro.passes.memcheck import MemoryCheckError
from repro.tofino.allocator import FitError
from tests.conftest import FIG4_CACHE

DOUBLE_ACCESS = (
    "_net_ int m[42];\n"
    "_kernel(1) void a(int x, int &r) { r = m[0] + m[1]; }"
)


class TestPerTargetRejection:
    def test_tofino_rejects_double_access(self):
        with pytest.raises(MemoryCheckError):
            compile_netcl(DOUBLE_ACCESS, 1, target="tna")

    def test_v1model_accepts_double_access(self):
        cp = compile_netcl(DOUBLE_ACCESS, 1, target="v1model")
        assert cp.report is not None
        # and it runs
        mod = cp.module
        fn = cp.kernels()[0]
        state = GlobalState()
        interp = IRInterpreter(mod, state)
        state.write(mod.globals["m"], [0], 30)
        state.write(mod.globals["m"], [1], 12)
        msg = KernelMessage({"x": 0, "r": 0})
        interp.run_kernel(fn, msg)
        assert msg.fields["r"] == 42

    def test_v1model_skips_memory_partitioning(self):
        cp = compile_netcl(FIG4_CACHE, 1, target="v1model")
        assert "cms.part0" not in cp.module.globals
        cp_tna = compile_netcl(FIG4_CACHE, 1, target="tna")
        assert "cms.part0" in cp_tna.module.globals

    def test_same_behavior_across_targets(self):
        for target in ("tna", "v1model"):
            cp = compile_netcl(FIG4_CACHE, 1, target=target)
            interp = IRInterpreter(cp.module, GlobalState(), device_id=1)
            msg = KernelMessage({"op": 1, "k": 4, "v": 0, "hit": 0, "hot": 0})
            out = interp.run_kernel(cp.kernels()[0], msg)
            assert msg.fields["v"] == 42 and out.kind.value == "reflect", target

    def test_huge_program_fits_v1model_only(self):
        # 64 registers of dependent accesses: far beyond 12 Tofino stages.
        body = "\n".join(
            f"  s = ncl::atomic_add_new(&m{i}, s & 0xff);" for i in range(64)
        )
        decls = "\n".join(f"_net_ unsigned m{i};" for i in range(64))
        src = f"{decls}\n_kernel(1) void k(unsigned &s) {{\n{body}\n}}"
        with pytest.raises(FitError):
            compile_netcl(src, 1, target="tna")
        cp = compile_netcl(src, 1, target="v1model")
        assert cp.report is not None

    def test_v1model_end_to_end_cluster(self):
        from repro.apps.cache import GET_REQ, build_cache_cluster

        cluster = build_cache_cluster(target="v1model")
        cluster.server.store[3] = list(range(16))
        cluster.controller.install(3, list(range(16)))
        cluster.client.query(GET_REQ, 3)
        cluster.network.sim.run()
        assert cluster.client.completed[0].served_by_cache
