"""The telemetry subsystem: metrics, tracing, profiling, and their wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import compile_netcl
from repro.core.cli import main as ncc_main
from repro.netsim import DEVICE, HOST, Link, Network, Simulator
from repro.runtime import DeviceConnection, KernelSpec, Message, NetCLDevice
from repro.telemetry import (
    MetricRegistry,
    NULL_PROFILER,
    Profiler,
    render_metrics_text,
    render_profile_text,
)
from repro.telemetry.metrics import NULL_INSTRUMENT

import repro

AGG_NCL = str(Path(repro.__file__).parent / "apps" / "netcl" / "agg.ncl")

ECHO = "_kernel(1) void k(unsigned x) { return ncl::reflect(); }"
PASS = "_kernel(1) void k(unsigned x) { }"


def _device(src=ECHO, dev_id=1):
    cp = compile_netcl(src, dev_id)
    return NetCLDevice(dev_id, cp.module, cp.kernels()), KernelSpec.from_kernel(
        cp.kernels()[0]
    )


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("g")
        g.inc(3)
        g.dec()
        assert g.value == 2 and g.max_value == 3
        h = reg.histogram("h")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4 and h.sum == 106
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(26.5)
        assert h.quantile(0.5) <= h.quantile(1.0)

    def test_instruments_are_cached_by_name(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricRegistry(enabled=False)
        c = reg.counter("c")
        assert c is NULL_INSTRUMENT
        c.inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1)
        assert c.value == 0
        assert len(reg) == 0 and reg.snapshot() == {}

    def test_total_and_value(self):
        reg = MetricRegistry()
        reg.counter("net.drop.a").inc(2)
        reg.counter("net.drop.b").inc(3)
        reg.counter("net.lost").inc(7)
        assert reg.total("net.drop.") == 5
        assert reg.value("net.lost") == 7
        assert reg.value("absent") == 0

    def test_snapshot_and_text(self):
        reg = MetricRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        reg.histogram("c").observe(10)
        snap = reg.snapshot()
        assert snap["a"] == 1
        assert snap["b"] == {"value": 2, "max": 2}
        assert snap["c"]["count"] == 1
        text = render_metrics_text(reg)
        assert "a" in text and "count=1" in text


class TestProfiler:
    def test_spans_nest_and_time(self):
        prof = Profiler()
        with prof.span("outer") as outer:
            with prof.span("inner", category="pass") as inner:
                pass
        assert inner.parent is outer
        assert outer.duration_ns >= inner.duration_ns >= 0
        assert prof.phases() == [outer] and prof.passes() == [inner]
        # total counts only top-level spans
        assert prof.total_seconds() == pytest.approx(outer.seconds)

    def test_record_external_timing(self):
        prof = Profiler()
        prof.record("dce", duration_ns=1000, meta={"changes": 3, "instrs_before": 10, "instrs_after": 7})
        prof.record("dce", duration_ns=500, meta={"changes": 1, "instrs_before": 7, "instrs_after": 7})
        (row,) = prof.pass_summary()
        assert row["runs"] == 2 and row["changes"] == 4
        assert row["instrs_delta"] == -3
        assert row["seconds"] == pytest.approx(1.5e-6)

    def test_null_profiler_records_nothing(self):
        with NULL_PROFILER.span("x") as sp:
            sp.meta["k"] = 1  # writable but discarded
        NULL_PROFILER.record("y", duration_ns=5)
        assert NULL_PROFILER.spans == []

    def test_to_dict_round_trips_through_json(self):
        prof = Profiler()
        with prof.span("frontend"):
            prof.record("simplify", duration_ns=10, meta={"changes": 0})
        d = json.loads(json.dumps(prof.to_dict()))
        assert [p["name"] for p in d["phases"]] == ["frontend"]
        assert d["passes"][0]["name"] == "simplify"


class TestCompileProfiling:
    def test_compile_populates_profiler(self):
        prof = Profiler()
        cp = compile_netcl(ECHO, 1, profiler=prof)
        assert cp.profile is prof
        names = [s.name for s in prof.phases()]
        assert names == ["frontend", "passes", "codegen", "fitter"]
        assert prof.passes(), "per-pass spans missing"
        # pass spans nest under the "passes" phase
        passes_phase = prof.phases()[1]
        assert all(s.parent is passes_phase for s in prof.passes())
        # profiler timing and CompileTimings agree within scheduling noise
        assert prof.phase_seconds("passes") <= cp.timings.passes_seconds * 3 + 0.05

    def test_default_compile_does_not_profile(self):
        cp = compile_netcl(ECHO, 1)
        assert cp.profile is NULL_PROFILER
        assert NULL_PROFILER.spans == []

    def test_pass_records_carry_ir_size_deltas(self):

        prof = Profiler()
        compile_netcl(ECHO, 1, profiler=prof)
        recs = [s for s in prof.passes() if s.meta.get("instrs_before") is not None]
        assert recs
        # sroa/mem2reg run first; sizes must be non-negative and consistent
        for s in recs:
            assert s.meta["instrs_before"] >= 0 and s.meta["instrs_after"] >= 0

    def test_render_profile_text(self):
        prof = Profiler()
        compile_netcl(ECHO, 1, profiler=prof)
        text = render_profile_text(prof)
        assert "frontend" in text and "fitter" in text
        assert "pass" in text and "Δinstrs" in text


class TestNccProfileCli:
    def test_profile_flag_prints_breakdown(self, capsys, tmp_path):
        out = tmp_path / "out.p4"
        rc = ncc_main([AGG_NCL, "--device", "1", "--profile", "-o", str(out)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "compile profile" in err
        for phase in ("frontend", "passes", "codegen", "fitter"):
            assert phase in err
        assert "mem2reg" in err  # per-pass row

    def test_profile_json_writes_valid_report(self, capsys, tmp_path):
        out = tmp_path / "out.p4"
        report = tmp_path / "profile.json"
        rc = ncc_main(
            [AGG_NCL, "--device", "1", "--profile-json", str(report), "-o", str(out)]
        )
        assert rc == 0
        data = json.loads(report.read_text())
        assert {p["name"] for p in data["phases"]} == {"frontend", "passes", "codegen", "fitter"}
        assert data["total_seconds"] > 0
        assert any(row["name"] == "hoist" for row in data["passes"])
        assert all(s["duration_ns"] >= 0 for s in data["spans"])


class TestSimulatorCompaction:
    def test_pending_is_live_count(self):
        sim = Simulator()
        events = [sim.at(i + 1, lambda: None) for i in range(10)]
        assert sim.pending == 10
        for ev in events[:4]:
            ev.cancel()
        assert sim.pending == 6
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending == 6

    def test_compaction_shrinks_heap(self):
        sim = Simulator()
        events = [sim.at(i + 1, lambda: None) for i in range(200)]
        for ev in events[: 150]:
            ev.cancel()
        assert sim.compactions >= 1
        # cancelled entries were (at least partially) physically removed
        assert len(sim._queue) < 200
        assert sim.pending == 50
        sim.run()
        assert sim.events_processed == 50

    def test_cancel_after_fire_keeps_accounting(self):
        sim = Simulator()
        ev = sim.at(1, lambda: None)
        sim.at(2, lambda: None)
        sim.run(max_events=1)
        ev.cancel()  # already fired: must not corrupt pending
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        log = []
        keep = []
        for i in range(100):
            ev = sim.at(i, lambda i=i: log.append(i))
            if i % 2:
                keep.append(i)
            else:
                ev.cancel()
        sim.run()
        assert log == keep


class TestLinkSerialization:
    def test_rounds_up_not_down(self):
        link = Link(bandwidth_gbps=100.0)
        # 100 bytes = 800 bits at 100 bits/ns = 8 ns exactly
        assert link.serialization_ns(100) == 8
        # 101 bytes = 808 bits -> 8.08 ns -> ceil 9
        assert link.serialization_ns(101) == 9

    def test_minimum_one_ns(self):
        fast = Link(bandwidth_gbps=10_000.0)
        assert fast.serialization_ns(1) == 1
        assert fast.serialization_ns(0) == 1


class TestNetworkCounters:
    def test_link_and_node_counters(self):
        dev, spec = _device(PASS)
        net = Network()
        h1, h2 = net.add_host(1), net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        pkt = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        m = net.metrics
        assert m.value("node.tx_packets.h1") == 1
        assert m.value("node.rx_packets.h2") == 1
        assert m.value("node.rx_packets.d1") == 1
        assert m.value("link.tx_packets.d1-h1") == 1
        assert m.value("link.tx_packets.d1-h2") == 1
        assert m.value("link.tx_bytes.d1-h1") == pkt.size_bytes
        # in-flight gauges drain but remember their high-water mark
        assert m.get("link.in_flight.d1-h1").value == 0
        assert m.get("link.in_flight.d1-h1").max_value == 1
        assert m.get("node.queue.d1").max_value == 1

    def test_drop_causes_are_distinguished(self):
        drop_src = "_kernel(1) void k(unsigned x) { return ncl::drop(); }"
        dev, spec = _device(drop_src)
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [7])
        net.sim.run()
        assert net.metrics.value("net.drop.kernel") == 1
        assert net.packets_dropped == 1

        # unroutable destination, on a forwarding (non-drop) kernel
        dev2, spec2 = _device(PASS, dev_id=2)
        net2 = Network()
        g1 = net2.add_host(1)
        net2.add_switch(dev2)
        net2.link(HOST(1), DEVICE(2))
        g1.send_message(Message(src=1, dst=9, comp=1, to=2), spec2, [7])
        net2.sim.run()
        assert net2.metrics.value("net.drop.no_route") == 1
        assert net2.packets_dropped == 1

    def test_kernel_counters(self):
        dev, spec = _device(ECHO)
        net = Network()
        h1 = net.add_host(1)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        for _ in range(3):
            h1.send_message(Message(src=1, dst=1, comp=1, to=1), spec, [1])
        net.sim.run()
        m = dev.metrics
        assert m.value("kernel.dispatches") == 3
        assert m.value("kernel.computed") == 3
        assert m.value("kernel.action.reflect") == 3
        assert m.value("kernel.forward.to_host") == 3
        assert m.value("kernel.noop_forwards") == 0

    def test_managed_memory_counters(self):
        src = """
        _managed_ unsigned counters[8];
        _kernel(1) void k(unsigned x) { }
        """
        cp = compile_netcl(src, 1)
        dev = NetCLDevice(1, cp.module, cp.kernels())
        conn = DeviceConnection(dev)
        conn.managed_write("counters", 5, 2)
        assert conn.managed_read("counters", 2) == 5
        conn.managed_read_all("counters")
        assert dev.metrics.value("managed.writes") == 1
        assert dev.metrics.value("managed.reads") == 2


class TestServiceMetricsExport:
    """The multi-tenant service's counters ride the standard export path."""

    def test_service_and_tenant_counters_exported(self):
        from repro.deploy import AbstractTopology, PhysicalFabric
        from repro.service import INCService
        from repro.telemetry.export import metrics_to_json

        fab = PhysicalFabric()
        fab.add_switch(1)
        fab.add_host(1)
        fab.link(HOST(1), DEVICE(1))
        svc = INCService(fab)
        cp = compile_netcl(ECHO, 1)
        topo = AbstractTopology()
        topo.add_device(1, cp)
        topo.attach_host(1, 1)
        svc.submit("t1", topo)
        spec = KernelSpec.from_kernel(cp.kernels()[0])
        net = svc.network
        net.hosts[1].send_message(
            Message(src=1, dst=1, comp=1, to=svc.device_id_of("t1", 1)),
            spec,
            [5],
        )
        net.sim.run()

        snap = json.loads(metrics_to_json(net.metrics))
        assert snap["service.tenants_active"] == {"value": 1, "max": 1}
        assert snap["service.submissions"] == 1
        assert snap["service.admission_rejects"] == 0
        assert snap["tenant.t1.packets"] == 1
        assert snap["tenant.t1.computed"] == 1
        assert snap["tenant.t1.latency_ns"]["count"] == 0
        text = render_metrics_text(net.metrics)
        assert "service.tenants_active" in text and "tenant.t1.packets" in text


class TestPacketTracing:
    def test_disabled_by_default(self):
        dev, spec = _device(PASS)
        net = Network()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        pkt = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        assert not net.tracer.enabled and len(net.tracer) == 0
        assert pkt.trace_id is None

    def test_end_to_end_trace(self):
        dev, spec = _device(PASS)
        net = Network()
        tracer = net.enable_tracing()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        pkt = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        trace = tracer.trace_of(pkt)
        assert trace is not None
        kinds = [h.kind for h in trace.hops]
        assert kinds == ["inject", "tx", "decision", "tx", "deliver"]
        assert trace.path == ["h1", "d1", "h2"]
        # times are monotone and the decision happened at the switch
        times = [h.t_ns for h in trace.hops]
        assert times == sorted(times)
        assert trace.hops[2].node == "d1" and "to_host" in trace.hops[2].detail

    def test_trace_export_jsonl_and_timeline(self):
        dev, spec = _device(PASS)
        net = Network()
        tracer = net.enable_tracing()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1))
        net.link(HOST(2), DEVICE(1))
        pkt = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 5
        recs = [json.loads(line) for line in lines]
        assert all(r["trace"] == pkt.trace_id for r in recs)
        text = tracer.timeline(pkt.trace_id)
        assert "h1" in text and "d1" in text and "deliver" in text

    def test_lost_packet_trace_ends_with_loss(self):
        dev, spec = _device(PASS)
        net = Network(seed=4)
        tracer = net.enable_tracing()
        h1 = net.add_host(1)
        net.add_host(2)
        net.add_switch(dev)
        net.link(HOST(1), DEVICE(1), Link(loss_probability=1.0))
        net.link(HOST(2), DEVICE(1))
        pkt = h1.send_message(Message(src=1, dst=2, comp=1, to=1), spec, [5])
        net.sim.run()
        trace = tracer.trace_of(pkt)
        assert trace.hops[-1].kind == "lost"
        assert net.packets_lost == 1
