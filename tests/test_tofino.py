"""Tofino chip model: stage allocation, PHV packing, latency model."""

import pytest

from repro.tofino import (
    DependencyKind,
    FitError,
    LatencyModel,
    LogicalTable,
    MatchKind,
    PhvAllocator,
    PipelineSpec,
    StageAllocator,
    TOFINO_1,
    build_report,
)
from repro.tofino.chip import V1MODEL
from repro.tofino.phv import PhvError


def spec_of(*tables: LogicalTable) -> PipelineSpec:
    s = PipelineSpec("t")
    for t in tables:
        s.add(t)
    return s


class TestStageAllocator:
    def test_independent_tables_share_a_stage(self):
        fit = StageAllocator().fit(
            spec_of(LogicalTable("a", vliw_slots=1), LogicalTable("b", vliw_slots=1))
        )
        assert fit.stage_of["a"] == fit.stage_of["b"] == 0

    def test_match_dependency_forces_next_stage(self):
        b = LogicalTable("b", vliw_slots=1)
        b.add_dep("a", DependencyKind.MATCH)
        fit = StageAllocator().fit(spec_of(LogicalTable("a", vliw_slots=1), b))
        assert fit.stage_of["b"] == fit.stage_of["a"] + 1

    def test_control_dependency_allows_same_stage(self):
        b = LogicalTable("b", vliw_slots=1)
        b.add_dep("gw", DependencyKind.CONTROL)
        fit = StageAllocator().fit(spec_of(LogicalTable("gw", is_gateway=True), b))
        assert fit.stage_of["b"] == fit.stage_of["gw"]

    def test_salu_budget_spreads_registers(self):
        tables = [
            LogicalTable(f"r{i}", salus=1, register_bits=1024, vliw_slots=1)
            for i in range(6)
        ]
        fit = StageAllocator().fit(spec_of(*tables))
        assert max(s.salus for s in fit.stages) <= TOFINO_1.salus_per_stage
        assert len(fit.stages) == 2  # 6 SALUs at 4/stage

    def test_chain_longer_than_pipe_rejected(self):
        tables = []
        prev = None
        for i in range(13):
            t = LogicalTable(f"t{i}", vliw_slots=1)
            if prev:
                t.add_dep(prev, DependencyKind.MATCH)
            prev = t.name
            tables.append(t)
        with pytest.raises(FitError, match="does not fit"):
            StageAllocator().fit(spec_of(*tables))

    def test_cycle_rejected(self):
        a = LogicalTable("a", vliw_slots=1)
        b = LogicalTable("b", vliw_slots=1)
        a.add_dep("b", DependencyKind.MATCH)
        b.add_dep("a", DependencyKind.MATCH)
        with pytest.raises(FitError, match="cyclic"):
            StageAllocator().fit(spec_of(a, b))

    def test_colocation_same_stage_on_asic(self):
        anchor = LogicalTable("reg", salus=1, register_bits=64, vliw_slots=1)
        partner = LogicalTable("reg_2", vliw_slots=1, colocate="reg")
        fit = StageAllocator().fit(spec_of(anchor, partner))
        assert fit.stage_of["reg"] == fit.stage_of["reg_2"]

    def test_colocation_conflict_replays_anchor_later(self):
        # partner needs stage >= 1; anchor would greedily go to 0.
        producer = LogicalTable("p", vliw_slots=1)
        anchor = LogicalTable("reg", salus=1, register_bits=64, vliw_slots=1)
        partner = LogicalTable("reg_2", vliw_slots=1, colocate="reg")
        partner.add_dep("p", DependencyKind.MATCH)
        fit = StageAllocator().fit(spec_of(producer, anchor, partner))
        assert fit.stage_of["reg"] == fit.stage_of["reg_2"] == 1

    def test_colocation_ignored_on_software_switch(self):
        producer = LogicalTable("p", vliw_slots=1)
        anchor = LogicalTable("reg", salus=1, register_bits=64, vliw_slots=1)
        partner = LogicalTable("reg_2", vliw_slots=1, colocate="reg")
        partner.add_dep("p", DependencyKind.MATCH)
        fit = StageAllocator(V1MODEL).fit(spec_of(producer, anchor, partner))
        assert fit.stage_of["reg_2"] >= 1  # no same-stage requirement

    def test_critical_path_priority(self):
        # "tail" feeds a long chain; the fat fan-out should not starve it.
        tail = LogicalTable("tail", salus=1, register_bits=64, vliw_slots=1)
        chain1 = LogicalTable("c1", vliw_slots=1)
        chain1.add_dep("tail", DependencyKind.MATCH)
        chain2 = LogicalTable("c2", vliw_slots=1)
        chain2.add_dep("c1", DependencyKind.MATCH)
        fat = [LogicalTable(f"f{i}", salus=1, register_bits=64, vliw_slots=1) for i in range(7)]
        fit = StageAllocator().fit(spec_of(*fat, tail, chain1, chain2))
        assert fit.stage_of["tail"] == 0  # placed before the fan-out fills stage 0

    def test_sram_accounting(self):
        big = LogicalTable("big", register_bits=TOFINO_1.sram_block_bits * 3)
        fit = StageAllocator().fit(spec_of(big))
        assert fit.stages[0].sram_blocks == 3

    def test_tcam_for_ternary(self):
        t = LogicalTable("acl", MatchKind.TERNARY, key_bits=48, entries=100, vliw_slots=1)
        fit = StageAllocator().fit(spec_of(t))
        assert fit.stages[0].tcam_blocks >= 2  # 48b key -> 2x 44b slices


class TestPhv:
    def test_exact_container_packing(self):
        rep = PhvAllocator().allocate([8, 16, 32], [], [])
        assert (rep.used_8, rep.used_16, rep.used_32) == (1, 1, 1)

    def test_wide_field_spans_containers(self):
        rep = PhvAllocator().allocate([48], [], [])
        assert rep.used_32 == 1 and rep.used_16 == 1

    def test_odd_width_rounds_up(self):
        rep = PhvAllocator().allocate([9], [], [])
        assert rep.used_16 == 1

    def test_overflow_rebalances(self):
        # more 32-bit demand than 32-bit containers: spills to 16s
        rep = PhvAllocator().allocate([32] * 80, [], [])
        assert rep.used_32 == 64 and rep.used_16 == 32

    def test_exhaustion_raises(self):
        with pytest.raises(PhvError):
            PhvAllocator().allocate([32] * 500, [], [])

    def test_occupancy_fraction(self):
        rep = PhvAllocator().allocate([TOFINO_1.phv.total_bits // 2], [], [])
        assert 0.45 < rep.occupancy < 0.55


class TestLatency:
    def test_empty_pipe_baseline(self):
        fit = StageAllocator().fit(spec_of(LogicalTable("t", vliw_slots=1)))
        rep = LatencyModel(TOFINO_1).latency(fit)
        assert 200 < rep.total_ns < 600

    def test_match_chains_cost_more(self):
        flat = spec_of(*[LogicalTable(f"a{i}", vliw_slots=1) for i in range(4)])
        chain_tables = []
        prev = None
        for i in range(4):
            t = LogicalTable(f"c{i}", vliw_slots=1)
            if prev:
                t.add_dep(prev, DependencyKind.MATCH)
            prev = t.name
            chain_tables.append(t)
        chained = spec_of(*chain_tables)
        lat_flat = LatencyModel(TOFINO_1).latency(StageAllocator().fit(flat))
        lat_chain = LatencyModel(TOFINO_1).latency(StageAllocator().fit(chained))
        assert lat_chain.total_ns > lat_flat.total_ns

    def test_parser_cost_scales_with_bytes(self):
        s1 = spec_of(LogicalTable("t", vliw_slots=1))
        s1.parsed_bytes = 64
        s2 = spec_of(LogicalTable("t", vliw_slots=1))
        s2.parsed_bytes = 256
        l1 = LatencyModel(TOFINO_1).latency(StageAllocator().fit(s1))
        l2 = LatencyModel(TOFINO_1).latency(StageAllocator().fit(s2))
        assert l2.parser_cycles > l1.parser_cycles


class TestReport:
    def test_row_fields(self):
        rep = build_report(spec_of(LogicalTable("t", vliw_slots=2, salus=1, register_bits=64)))
        row = rep.row()
        for key in ("stages", "sram_pct", "tcam_pct", "salus_pct", "vliw_pct", "phv_pct", "latency_ns"):
            assert key in row
        assert row["stages"] == 1 and row["salus_pct"] > 0
