"""Translation validation: vector mining, diff execution, miscompile detection.

The acceptance bar for the harness is the mutation tests: a deliberately
miscompiling pass (seeded via monkeypatch into the real pipeline) must be
flagged with the offending pass name and a concrete counterexample input
vector, while the unmutated pipeline validates clean on the same programs.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.tvalid import (
    PassValidator,
    TranslationValidationError,
    capture_behavior,
    generate_vectors,
)
from repro.core import cli
from repro.ir.instructions import BinOp, BinOpKind, Constant
from repro.lang import analyze, lower_to_ir, parse_source
from repro.passes import PassOptions, run_default_pipeline
from repro.passes.manager import PassManager


def _lower(src: str):
    return lower_to_ir(analyze(parse_source(src)))


BRANCHY = """
_kernel(1) void k(unsigned x, unsigned &out) {
  if (x > 1000) { out = x - 1000; }
  else { out = x + 7; }
}
"""

ARITH = """
_net_ unsigned g[8];
_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {
  unsigned t = a ^ (b >> 3);
  if (t > 9) { t = t - 9; }
  r = t + 1;
  ncl::atomic_add(&g[a & 7], t);
}
"""


# -- input vector generation ---------------------------------------------------------


class TestVectorGeneration:
    def test_deterministic_across_calls(self):
        fn = _lower(BRANCHY).kernels()[0]
        assert generate_vectors(fn) == generate_vectors(fn)

    def test_deterministic_across_fresh_lowerings(self):
        # The seed derives from the kernel name, not object identity.
        a = generate_vectors(_lower(BRANCHY).kernels()[0])
        b = generate_vectors(_lower(BRANCHY).kernels()[0])
        assert a == b

    def test_boundary_values_cover_branch_flip(self):
        """``if (x > 1000)`` flips between 1000 and 1001: the mined
        boundary set must include both sides plus the constant itself."""
        fn = _lower(BRANCHY).kernels()[0]
        xs = {v["x"] for v in generate_vectors(fn)}
        assert {999, 1000, 1001} <= xs

    def test_zero_and_one_always_present(self):
        fn = _lower(ARITH).kernels()[0]
        seen = set()
        for vec in generate_vectors(fn):
            seen.update(v for v in vec.values() if isinstance(v, int))
        assert {0, 1} <= seen

    def test_values_respect_field_width(self):
        mod = _lower(
            "_kernel(1) void k(uint8_t x, unsigned y, uint8_t &r) { "
            "if (y > 70000) { r = x; } }"
        )
        for vec in generate_vectors(mod.kernels()[0]):
            assert 0 <= vec["x"] <= 0xFF
            assert 0 <= vec["y"] <= 0xFFFFFFFF


# -- clean pipelines validate ----------------------------------------------------------


class TestCleanPipeline:
    @pytest.mark.parametrize("target", ["v1model", "tna"])
    def test_default_pipeline_validates(self, target):
        mod = _lower(ARITH)
        pm = run_default_pipeline(
            mod, PassOptions(target=target, verify_passes=True)
        )
        assert pm.validator is not None
        assert pm.validator.checks, "no pass checks recorded"
        report = pm.validator.report()
        assert report["kernels"] == ["k"]
        assert not report["skipped"]

    def test_pure_check_passes_not_validated(self):
        mod = _lower(ARITH)
        pm = run_default_pipeline(mod, PassOptions(verify_passes=True))
        names = {p for p, _, _ in pm.validator.checks}
        assert "dagcheck" not in names and "memcheck" not in names

    def test_rand_kernel_skipped_not_failed(self):
        mod = _lower(
            "_kernel(1) void k(unsigned &r) { r = ncl::rand<u8>(); }"
        )
        pm = run_default_pipeline(mod, PassOptions(verify_passes=True))
        report = pm.validator.report()
        assert "k" in report["skipped"]
        assert report["kernels"] == []


# -- mutation tests: seeded miscompiles must be caught -----------------------------------


def _flip_first_add(fn) -> int:
    for bb in fn.blocks:
        for inst in bb.instructions:
            if isinstance(inst, BinOp) and inst.kind == BinOpKind.ADD:
                inst.kind = BinOpKind.SUB
                return 1
    return 0


def _zero_first_divisor(fn) -> int:
    for bb in fn.blocks:
        for inst in bb.instructions:
            if isinstance(inst, BinOp) and inst.kind == BinOpKind.UDIV:
                inst.b = Constant(inst.type, 0)
                return 1
    return 0


class TestMutationDetection:
    def test_wrong_result_mutation_is_pinned_to_pass(self, monkeypatch):
        """An ADD flipped to SUB inside 'simplify' must surface as a
        TranslationValidationError naming that pass, with a counterexample."""
        from repro.passes import manager as manager_mod

        real = manager_mod.simplify_function

        def evil_simplify(fn):
            changed = real(fn) or 0
            return changed + _flip_first_add(fn)

        monkeypatch.setattr(manager_mod, "simplify_function", evil_simplify)
        mod = _lower(ARITH)
        with pytest.raises(TranslationValidationError) as ei:
            run_default_pipeline(mod, PassOptions(verify_passes=True))
        exc = ei.value
        assert exc.pass_name.startswith("simplify")
        assert exc.function == "k"
        assert isinstance(exc.vector, dict) and {"a", "b", "r"} <= set(exc.vector)
        assert "counterexample" in str(exc)
        d = exc.to_json_dict()
        assert d["pass"] == exc.pass_name and d["vector"] == exc.vector

    def test_introduced_trap_is_flagged(self, monkeypatch):
        """Zeroing a divisor makes the optimized kernel trap where the
        reference did not — refinement forbids that direction."""
        from repro.passes import manager as manager_mod

        real = manager_mod.dead_code_elimination

        def evil_dce(fn):
            changed = real(fn) or 0
            return changed + _zero_first_divisor(fn)

        monkeypatch.setattr(manager_mod, "dead_code_elimination", evil_dce)
        mod = _lower(
            "_kernel(1) void k(unsigned a, unsigned &r) { r = a / 7 + 1; }"
        )
        with pytest.raises(TranslationValidationError) as ei:
            run_default_pipeline(mod, PassOptions(verify_passes=True))
        assert ei.value.pass_name.startswith("dce")

    def test_removed_trap_is_allowed_refinement(self):
        """A division that can trap but whose result is unused is legally
        deleted by DCE: the reference traps on some vector, the optimized
        kernel never does, and validation still passes."""
        src = (
            "_kernel(1) void k(unsigned a, unsigned b, unsigned &r) {\n"
            "  unsigned dead = a / b;\n"
            "  r = a + b;\n"
            "}\n"
        )
        ref_mod = _lower(src)
        fn = ref_mod.kernels()[0]
        vectors = generate_vectors(fn)
        ref = capture_behavior(ref_mod, fn, vectors)
        assert ref.trap_index is not None, "expected a b==0 vector to trap"

        mod = _lower(src)
        pm = run_default_pipeline(mod, PassOptions(verify_passes=True))
        assert pm.validator.checks  # validated clean despite the dropped trap


# -- validator object behavior ----------------------------------------------------------


class TestPassValidator:
    def test_check_against_unprepared_kernel_is_noop(self):
        mod = _lower(ARITH)
        v = PassValidator(mod)
        v.check("simplify", mod.kernels()[0])  # no prepare(): must not raise
        assert v.checks == []

    def test_report_shape(self):
        mod = _lower(ARITH)
        v = PassValidator(mod)
        fn = mod.kernels()[0]
        v.prepare(fn)
        v.check("noop", fn)
        rep = v.report()
        assert rep["device_id"] == 1
        assert rep["kernels"] == ["k"]
        assert rep["vectors"]["k"] >= 2
        assert rep["checks"][0]["pass"] == "noop"
        assert rep["checks"][0]["vectors_compared"] > 0

    def test_module_pass_validation_covers_all_kernels(self):
        mod = _lower(
            "_kernel(1) void f(unsigned x, unsigned &r) { r = x + 1; }\n"
            "_kernel(2) void g(unsigned x, unsigned &r) { r = x * 2; }\n"
        )
        v = PassValidator(mod)
        for fn in mod.kernels():
            v.prepare(fn)
        v.check_all("partition-memory", mod.kernels())
        assert {f for _, f, _ in v.checks} == {"f", "g"}


# -- PassManager / CLI integration --------------------------------------------------------


class TestIntegration:
    def test_manager_without_flag_has_no_validator(self):
        mod = _lower(ARITH)
        pm = PassManager(PassOptions())
        pm.run_pipeline(mod, 1)
        assert pm.validator is None

    def test_cli_verify_ok(self, tmp_path, capsys):
        p = tmp_path / "prog.ncl"
        p.write_text(ARITH)
        assert cli.main(["verify", str(p)]) == 0
        out = capsys.readouterr().out
        assert "ncc verify: OK" in out and "k" in out

    def test_cli_verify_json(self, tmp_path, capsys):
        p = tmp_path / "prog.ncl"
        p.write_text(BRANCHY)
        assert cli.main(["verify", str(p), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["devices"][0]["status"] == "ok"
        assert report["devices"][0]["kernels"] == ["k"]
        assert report["devices"][0]["checks"]

    def test_cli_verify_flags_miscompile(self, tmp_path, capsys, monkeypatch):
        from repro.passes import manager as manager_mod

        real = manager_mod.simplify_function

        def evil(fn):
            return (real(fn) or 0) + _flip_first_add(fn)

        monkeypatch.setattr(manager_mod, "simplify_function", evil)
        p = tmp_path / "prog.ncl"
        p.write_text(ARITH)
        assert cli.main(["verify", str(p), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "miscompile"
        bad = report["devices"][0]
        assert bad["status"] == "miscompile"
        assert bad["pass"].startswith("simplify")
        assert isinstance(bad["vector"], dict)

    def test_cli_compile_verify_passes_flag(self, tmp_path, capsys):
        p = tmp_path / "prog.ncl"
        p.write_text(ARITH)
        rc = cli.main(
            [str(p), "--verify-passes", "--device", "1", "--target", "v1model"]
        )
        assert rc == 0
