#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a committed baseline.

Usage:
    python tools/bench_compare.py BASELINE.json CURRENT.json \
        --key packets_per_sec [--key events_per_sec] [--max-regression 0.20]

Each ``--key`` names a higher-is-better metric.  The check fails (exit 1)
if ``current < baseline * (1 - max_regression)`` for any key.  A missing
baseline file, or keys missing from the baseline, are treated as new
metrics and pass with a notice (first run after adding a benchmark);
keys missing from the current file are an error (the benchmark silently
stopped reporting them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument(
        "--key", action="append", required=True, dest="keys",
        help="higher-is-better metric to gate on (repeatable)",
    )
    ap.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional drop vs baseline (default 0.20)",
    )
    args = ap.parse_args(argv)

    if not args.baseline.exists():
        print(
            f"bench-compare: {args.baseline}: no baseline yet, "
            "treating every key as a new metric"
        )
        baseline = {}
    else:
        baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())

    failed = False
    for key in args.keys:
        if key not in baseline:
            print(f"bench-compare: {key}: new metric, no baseline to gate on")
            continue
        if key not in current:
            print(f"bench-compare: {key}: missing from {args.current}")
            failed = True
            continue
        base, cur = float(baseline[key]), float(current[key])
        floor = base * (1.0 - args.max_regression)
        ratio = cur / base if base else float("inf")
        status = "OK" if cur >= floor else "REGRESSION"
        print(
            f"bench-compare: {key}: baseline={base:,.0f} current={cur:,.0f} "
            f"({ratio:.2f}x, floor {floor:,.0f}) {status}"
        )
        if cur < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
