#!/usr/bin/env python3
"""Lint every NetCL program in the repository (CI gate).

Covers the paper applications (``src/repro/apps/netcl/*.ncl``) and the
NetCL kernels embedded as raw strings in ``examples/*.py``.  Runs with
``--Werror`` semantics: any warning or error fails the run.

Usage::

    PYTHONPATH=src python tools/lint_all.py [--json]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "src"))

from repro.analysis import DiagnosticEngine, lint_source  # noqa: E402

_RAW_STRING = re.compile(r'r"""(.*?)"""', re.S)


def collect_programs() -> list[tuple[str, str]]:
    """(display name, NetCL source) for every lintable program."""
    programs: list[tuple[str, str]] = []
    for path in sorted((REPO / "src" / "repro" / "apps" / "netcl").glob("*.ncl")):
        programs.append((str(path.relative_to(REPO)), path.read_text()))
    for path in sorted((REPO / "examples").glob("*.py")):
        text = path.read_text()
        for i, match in enumerate(_RAW_STRING.finditer(text)):
            body = match.group(1)
            if "_kernel(" not in body:
                continue
            # Anchor diagnostics at real file lines: pad with the prefix's
            # newlines so reported positions match the .py file.
            pad = "\n" * text[: match.start(1)].count("\n")
            programs.append((f"{path.relative_to(REPO)}[{i}]", pad + body))
    return programs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true", help="JSON per program")
    args = parser.parse_args(argv)

    failures = 0
    for name, source in collect_programs():
        engine = DiagnosticEngine(werror=True, source_name=name)
        lint_source(source, engine=engine, program_name=Path(name).stem)
        if args.json:
            print(engine.to_json())
        if engine.exit_code:
            failures += 1
            print(engine.render_text(), file=sys.stderr)
        else:
            print(f"{name}: clean")
    if failures:
        print(f"lint_all: {failures} program(s) failed", file=sys.stderr)
        return 1
    print("lint_all: all programs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
