#!/usr/bin/env python3
"""Translation-validate every NetCL program in the repository (CI gate).

Runs the full middle-end under ``verify_passes`` for the paper
applications (``src/repro/apps/netcl/*.ncl``), the NetCL kernels embedded
as raw strings in ``examples/*.py``, and the lint fixtures under
``tests/lint`` — every pass of every pipeline is differentially executed
against the kernel's pre-pipeline behavior, so any miscompile fails CI
with the offending pass name and a counterexample input vector.

Usage::

    PYTHONPATH=src python tools/verify_all.py [--target tna|v1model]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "src"))

from repro.analysis.estimate import estimate_devices  # noqa: E402
from repro.analysis.tvalid import TranslationValidationError  # noqa: E402
from repro.lang import analyze, lower_to_ir, parse_source  # noqa: E402
from repro.lang.errors import CompileError  # noqa: E402
from repro.passes.manager import PassManager, PassOptions  # noqa: E402
from repro.passes.memcheck import MemoryCheckError  # noqa: E402

_RAW_STRING = re.compile(r'r"""(.*?)"""', re.S)


def collect_programs() -> list[tuple[str, str]]:
    """(display name, NetCL source) for every verifiable program."""
    programs: list[tuple[str, str]] = []
    for path in sorted((REPO / "src" / "repro" / "apps" / "netcl").glob("*.ncl")):
        programs.append((str(path.relative_to(REPO)), path.read_text()))
    for path in sorted((REPO / "tests" / "lint").glob("*.ncl")):
        programs.append((str(path.relative_to(REPO)), path.read_text()))
    for path in sorted((REPO / "examples").glob("*.py")):
        text = path.read_text()
        for i, match in enumerate(_RAW_STRING.finditer(text)):
            body = match.group(1)
            if "_kernel(" not in body:
                continue
            programs.append((f"{path.relative_to(REPO)}[{i}]", body))
    return programs


def verify_program(name: str, source: str, target: str) -> tuple[int, str]:
    """(pass checks run, status line) for one program, raising on miscompile."""
    try:
        module = lower_to_ir(analyze(parse_source(source)), name=Path(name).stem)
    except CompileError as exc:
        return 0, f"{name}: skipped (does not compile standalone: {exc})"
    checks = 0
    for dev in estimate_devices(module):
        mod = lower_to_ir(analyze(parse_source(source)), name=Path(name).stem)
        pm = PassManager(PassOptions(target=target, verify_passes=True))
        try:
            pm.run_pipeline(mod, dev)
        except (CompileError, MemoryCheckError) as exc:
            return 0, f"{name}: skipped on device {dev} ({exc})"
        if pm.validator is not None:
            checks += len(pm.validator.checks)
    return checks, f"{name}: OK ({checks} pass checks)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", choices=("tna", "v1model"), default="tna")
    args = parser.parse_args(argv)

    failures = 0
    total_checks = 0
    for name, source in collect_programs():
        try:
            checks, line = verify_program(name, source, args.target)
        except TranslationValidationError as exc:
            failures += 1
            print(f"{name}: MISCOMPILE: {exc}", file=sys.stderr)
            continue
        total_checks += checks
        print(line)
    if failures:
        print(f"verify_all: {failures} program(s) miscompiled", file=sys.stderr)
        return 1
    print(f"verify_all: all programs behavior-preserving ({total_checks} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
